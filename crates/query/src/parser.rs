//! A small SPARQL-like query language for basic graph patterns.
//!
//! Grammar (a pragmatic SPARQL subset — enough for every query shape the
//! paper discusses):
//!
//! ```text
//! query    := (SELECT [DISTINCT] (var+ | '*') WHERE | ASK [WHERE])
//!             '{' (pattern | filter)* '}' modifier*
//! pattern  := term term term '.'?        (last '.' optional)
//! filter   := FILTER '(' operand ('=' | '!=') operand ')'
//! operand  := '?'name | term
//! term     := '?'name | '<'iri'>' | literal | '_:'label
//! literal  := '"'chars'"' ('@'lang | '^^<'iri'>')?
//! modifier := LIMIT n | OFFSET n
//! ```
//!
//! The parser produces string-level [`TriplePattern`]s; compilation to
//! id-level algebra happens against a dictionary in [`crate::engine`].

use rdf_model::{Iri, Literal, Term, TermPattern, TriplePattern};
use std::fmt;

/// One side of a FILTER comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FilterOperand {
    /// A variable reference, without the `?`.
    Var(String),
    /// A constant term.
    Term(Term),
}

/// The comparison operator of a FILTER.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterOp {
    /// `=` — solutions where both sides denote the same term.
    Eq,
    /// `!=` — solutions where the sides denote different terms.
    Ne,
}

/// A `FILTER(lhs op rhs)` constraint inside the WHERE block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FilterExpr {
    /// Left operand.
    pub left: FilterOperand,
    /// Comparison operator.
    pub op: FilterOp,
    /// Right operand.
    pub right: FilterOperand,
}

/// A parsed SELECT or ASK query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedQuery {
    /// Projected variable names, in SELECT order. Empty means `SELECT *`
    /// (project every variable in first-mention order).
    pub select: Vec<String>,
    /// Whether DISTINCT was requested.
    pub distinct: bool,
    /// True for `ASK` queries (existence check, no projection).
    pub ask: bool,
    /// The basic graph pattern.
    pub patterns: Vec<TriplePattern>,
    /// FILTER constraints over the pattern's solutions.
    pub filters: Vec<FilterExpr>,
    /// `LIMIT n` solution modifier.
    pub limit: Option<usize>,
    /// `OFFSET n` solution modifier.
    pub offset: usize,
}

impl ParsedQuery {
    /// The variables to project: the SELECT list, or all pattern variables
    /// in first-mention order for `SELECT *`.
    pub fn projection(&self) -> Vec<String> {
        if !self.select.is_empty() {
            return self.select.clone();
        }
        let mut vars: Vec<String> = Vec::new();
        for pat in &self.patterns {
            for v in pat.variables() {
                if !vars.iter().any(|x| x == v) {
                    vars.push(v.to_string());
                }
            }
        }
        vars
    }
}

/// Error produced while parsing a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { offset: self.pos, message: message.into() })
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        loop {
            let r = self.rest();
            let trimmed = r.trim_start();
            self.pos += r.len() - trimmed.len();
            // Line comments.
            if self.rest().starts_with('#') {
                match self.rest().find('\n') {
                    Some(nl) => self.pos += nl + 1,
                    None => self.pos = self.input.len(),
                }
            } else {
                return;
            }
        }
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let r = self.rest();
        if r.len() >= kw.len() && r[..kw.len()].eq_ignore_ascii_case(kw) {
            let after = r[kw.len()..].chars().next();
            if after.is_none_or(|c| !c.is_ascii_alphanumeric() && c != '_') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn expect_char(&mut self, c: char) -> Result<(), ParseError> {
        self.skip_ws();
        match self.bump() {
            Some(got) if got == c => Ok(()),
            Some(got) => self.err(format!("expected '{c}', found '{got}'")),
            None => self.err(format!("expected '{c}', found end of input")),
        }
    }

    fn parse_var_name(&mut self) -> Result<String, ParseError> {
        // Caller consumed '?'.
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
            self.bump();
        }
        if self.pos == start {
            return self.err("empty variable name");
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn parse_iri_body(&mut self) -> Result<Iri, ParseError> {
        // Caller consumed '<'.
        let start = self.pos;
        loop {
            match self.bump() {
                Some('>') => return Ok(Iri::new(&self.input[start..self.pos - 1])),
                Some(c) if c == ' ' || c == '<' || c == '"' => {
                    return self.err(format!("invalid character '{c}' in IRI"))
                }
                Some(_) => {}
                None => return self.err("unterminated IRI"),
            }
        }
    }

    fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        // Caller consumed the opening quote.
        let mut lex = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('n') => lex.push('\n'),
                    Some('t') => lex.push('\t'),
                    Some('r') => lex.push('\r'),
                    Some('"') => lex.push('"'),
                    Some('\\') => lex.push('\\'),
                    Some(c) => return self.err(format!("invalid escape '\\{c}'")),
                    None => return self.err("dangling backslash"),
                },
                Some(c) => lex.push(c),
                None => return self.err("unterminated literal"),
            }
        }
        match self.peek() {
            Some('@') => {
                self.bump();
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '-') {
                    self.bump();
                }
                if self.pos == start {
                    return self.err("empty language tag");
                }
                Ok(Literal::lang(lex, &self.input[start..self.pos]))
            }
            Some('^') => {
                self.bump();
                if self.bump() != Some('^') {
                    return self.err("expected '^^' before datatype");
                }
                self.skip_ws();
                if self.bump() != Some('<') {
                    return self.err("expected '<' after '^^'");
                }
                let dt = self.parse_iri_body()?;
                Ok(Literal::typed(lex, dt))
            }
            _ => Ok(Literal::simple(lex)),
        }
    }

    fn parse_term_pattern(&mut self) -> Result<TermPattern, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('?') => {
                self.bump();
                Ok(TermPattern::var(self.parse_var_name()?))
            }
            Some('<') => {
                self.bump();
                Ok(TermPattern::Bound(Term::Iri(self.parse_iri_body()?)))
            }
            Some('"') => {
                self.bump();
                Ok(TermPattern::Bound(Term::Literal(self.parse_literal()?)))
            }
            Some('_') => {
                self.bump();
                if self.bump() != Some(':') {
                    return self.err("expected ':' after '_'");
                }
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
                    self.bump();
                }
                if self.pos == start {
                    return self.err("empty blank node label");
                }
                Ok(TermPattern::Bound(Term::blank(&self.input[start..self.pos])))
            }
            Some(c) => self.err(format!("unexpected character '{c}' at start of term")),
            None => self.err("unexpected end of input, expected a term"),
        }
    }

    fn parse_nonneg_int(&mut self) -> Result<usize, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return self.err("expected a non-negative integer");
        }
        self.input[start..self.pos]
            .parse()
            .map_err(|e| ParseError { offset: start, message: format!("bad integer: {e}") })
    }

    fn parse(&mut self) -> Result<ParsedQuery, ParseError> {
        let ask = self.eat_keyword("ASK");
        let mut distinct = false;
        let mut select = Vec::new();
        if !ask {
            if !self.eat_keyword("SELECT") {
                return self.err("query must start with SELECT or ASK");
            }
            distinct = self.eat_keyword("DISTINCT");
            self.skip_ws();
            if self.peek() == Some('*') {
                self.bump();
            } else {
                loop {
                    self.skip_ws();
                    if self.peek() == Some('?') {
                        self.bump();
                        select.push(self.parse_var_name()?);
                    } else {
                        break;
                    }
                }
                if select.is_empty() {
                    return self.err("SELECT needs at least one variable or '*'");
                }
            }
        }
        // WHERE is mandatory for SELECT, optional for ASK (as in SPARQL).
        if !self.eat_keyword("WHERE") && !ask {
            return self.err("expected WHERE");
        }
        self.expect_char('{')?;
        let mut patterns = Vec::new();
        let mut filters = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some('}') {
                self.bump();
                break;
            }
            if self.peek().is_none() {
                return self.err("unterminated '{' block");
            }
            if self.eat_keyword("FILTER") {
                filters.push(self.parse_filter()?);
                self.skip_ws();
                if self.peek() == Some('.') {
                    self.bump();
                }
                continue;
            }
            let s = self.parse_term_pattern()?;
            let p = self.parse_term_pattern()?;
            let o = self.parse_term_pattern()?;
            patterns.push(TriplePattern { subject: s, predicate: p, object: o });
            self.skip_ws();
            if self.peek() == Some('.') {
                self.bump();
            }
        }
        // Solution modifiers, in either order.
        let mut limit = None;
        let mut offset = 0;
        loop {
            if self.eat_keyword("LIMIT") {
                limit = Some(self.parse_nonneg_int()?);
            } else if self.eat_keyword("OFFSET") {
                offset = self.parse_nonneg_int()?;
            } else {
                break;
            }
        }
        self.skip_ws();
        if self.pos != self.input.len() {
            return self.err("trailing content after query");
        }
        Ok(ParsedQuery { select, distinct, ask, patterns, filters, limit, offset })
    }

    fn parse_filter_operand(&mut self) -> Result<FilterOperand, ParseError> {
        self.skip_ws();
        if self.peek() == Some('?') {
            self.bump();
            Ok(FilterOperand::Var(self.parse_var_name()?))
        } else {
            match self.parse_term_pattern()? {
                TermPattern::Bound(t) => Ok(FilterOperand::Term(t)),
                TermPattern::Var(v) => Ok(FilterOperand::Var(v.to_string())),
            }
        }
    }

    fn parse_filter(&mut self) -> Result<FilterExpr, ParseError> {
        self.expect_char('(')?;
        let left = self.parse_filter_operand()?;
        self.skip_ws();
        let op = match self.bump() {
            Some('=') => FilterOp::Eq,
            Some('!') => {
                if self.bump() != Some('=') {
                    return self.err("expected '!='");
                }
                FilterOp::Ne
            }
            Some(c) => return self.err(format!("expected '=' or '!=', found '{c}'")),
            None => return self.err("expected a comparison operator"),
        };
        let right = self.parse_filter_operand()?;
        self.expect_char(')')?;
        Ok(FilterExpr { left, op, right })
    }
}

/// Parses a query string.
pub fn parse_query(input: &str) -> Result<ParsedQuery, ParseError> {
    Parser { input, pos: 0 }.parse()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_upper_query() {
        // "What relationship does ID2 have to MIT?"
        let q =
            parse_query(r#"SELECT ?property WHERE { <http://x/ID2> ?property "MIT" . }"#).unwrap();
        assert_eq!(q.select, vec!["property"]);
        assert!(!q.distinct);
        assert_eq!(q.patterns.len(), 1);
        assert_eq!(q.patterns[0].predicate, TermPattern::var("property"));
        assert_eq!(q.patterns[0].object, TermPattern::Bound(Term::literal("MIT")));
    }

    #[test]
    fn parses_figure1_lower_query() {
        let q = parse_query(
            r#"SELECT ?b WHERE {
                <http://x/ID1> ?prop "Yale" .
                ?b ?prop "Stanford" .
            }"#,
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 2);
        assert_eq!(q.patterns[0].predicate, q.patterns[1].predicate);
    }

    #[test]
    fn select_star_projects_all_vars_in_order() {
        let q = parse_query("SELECT * WHERE { ?x <http://x/p> ?y . ?y <http://x/q> ?z }").unwrap();
        assert!(q.select.is_empty());
        assert_eq!(q.projection(), vec!["x", "y", "z"]);
    }

    #[test]
    fn distinct_flag() {
        let q = parse_query("SELECT DISTINCT ?x WHERE { ?x <http://x/p> ?x . }").unwrap();
        assert!(q.distinct);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse_query("select ?x where { ?x <http://x/p> \"v\" }").unwrap();
        assert_eq!(q.select, vec!["x"]);
    }

    #[test]
    fn literals_with_tags_and_datatypes() {
        let q = parse_query(
            r#"SELECT ?x WHERE {
                ?x <http://x/label> "chat"@fr .
                ?x <http://x/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
                ?x <http://x/note> "a\"b\\c" .
            }"#,
        )
        .unwrap();
        let lit = q.patterns[0].object.term().unwrap().as_literal().unwrap().clone();
        assert_eq!(lit.language(), Some("fr"));
        let typed = q.patterns[1].object.term().unwrap().as_literal().unwrap().clone();
        assert_eq!(typed.datatype(), "http://www.w3.org/2001/XMLSchema#integer");
        let esc = q.patterns[2].object.term().unwrap().as_literal().unwrap().clone();
        assert_eq!(esc.lexical(), "a\"b\\c");
    }

    #[test]
    fn blank_nodes_allowed() {
        let q = parse_query("SELECT ?p WHERE { _:b0 ?p ?o }").unwrap();
        assert_eq!(q.patterns[0].subject, TermPattern::Bound(Term::blank("b0")));
    }

    #[test]
    fn comments_are_skipped() {
        let q = parse_query("SELECT ?x # project x\nWHERE { # patterns\n ?x <http://x/p> ?y . }")
            .unwrap();
        assert_eq!(q.patterns.len(), 1);
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_query("WHERE { ?x ?p ?o }").is_err());
        assert!(parse_query("SELECT WHERE { ?x ?p ?o }").is_err());
        assert!(parse_query("SELECT ?x { ?x ?p ?o }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o ").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o } junk").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x <unclosed ?o }").is_err());
        assert!(parse_query(r#"SELECT ?x WHERE { ?x ?p "unclosed }"#).is_err());
    }

    #[test]
    fn limit_and_offset_modifiers() {
        let q = parse_query("SELECT ?x WHERE { ?x ?p ?o } LIMIT 10 OFFSET 5").unwrap();
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, 5);
        let q = parse_query("SELECT ?x WHERE { ?x ?p ?o } OFFSET 2").unwrap();
        assert_eq!(q.limit, None);
        assert_eq!(q.offset, 2);
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o } LIMIT").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o } LIMIT -1").is_err());
    }

    #[test]
    fn ask_queries() {
        let q = parse_query("ASK { ?x <http://x/p> ?y }").unwrap();
        assert!(q.ask);
        assert!(q.select.is_empty());
        let q = parse_query("ASK WHERE { ?x ?p ?o . }").unwrap();
        assert!(q.ask);
        assert_eq!(q.patterns.len(), 1);
    }

    #[test]
    fn filters() {
        let q = parse_query(
            r#"SELECT ?x WHERE { ?x <http://x/p> ?y . FILTER(?y != "Text") FILTER(?x = ?y) }"#,
        )
        .unwrap();
        assert_eq!(q.filters.len(), 2);
        assert_eq!(q.filters[0].op, FilterOp::Ne);
        assert_eq!(q.filters[0].left, FilterOperand::Var("y".into()));
        assert_eq!(q.filters[0].right, FilterOperand::Term(Term::literal("Text")));
        assert_eq!(q.filters[1].op, FilterOp::Eq);
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o FILTER(?x < ?o) }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o FILTER ?x = ?o }").is_err());
    }

    #[test]
    fn error_reports_offset() {
        let e = parse_query("SELECT ?x WHERE { ?x ?p }").unwrap_err();
        assert!(e.offset > 0);
        assert!(e.to_string().contains("offset"));
    }
}
