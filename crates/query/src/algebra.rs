//! Query algebra: basic graph patterns over dictionary ids.
//!
//! A *basic graph pattern* (BGP) is a conjunction of triple patterns
//! sharing variables — the query class the paper's twelve benchmark
//! queries are built from (selections, pairwise joins, path joins).

use hex_dict::Id;
use hexastore::IdPattern;

/// A variable slot index within a [`Bgp`]'s binding row.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u16);

impl VarId {
    /// The slot as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One position of an algebra pattern: a constant id or a variable slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PatternTerm {
    /// A dictionary-encoded constant.
    Const(Id),
    /// A variable slot.
    Var(VarId),
}

impl PatternTerm {
    /// The constant id, if this is a constant.
    pub fn as_const(self) -> Option<Id> {
        match self {
            PatternTerm::Const(id) => Some(id),
            PatternTerm::Var(_) => None,
        }
    }

    /// The variable slot, if this is a variable.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            PatternTerm::Var(v) => Some(v),
            PatternTerm::Const(_) => None,
        }
    }

    /// Resolves the position against a partial binding row: constants and
    /// already-bound variables become ids, unbound variables become `None`.
    #[inline]
    pub fn resolve(self, row: &[Option<Id>]) -> Option<Id> {
        match self {
            PatternTerm::Const(id) => Some(id),
            PatternTerm::Var(v) => row[v.index()],
        }
    }
}

/// An algebra triple pattern.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Pattern {
    /// Subject position.
    pub s: PatternTerm,
    /// Predicate position.
    pub p: PatternTerm,
    /// Object position.
    pub o: PatternTerm,
}

impl Pattern {
    /// Creates a pattern.
    pub fn new(s: PatternTerm, p: PatternTerm, o: PatternTerm) -> Self {
        Pattern { s, p, o }
    }

    /// The [`IdPattern`] this pattern denotes under a partial binding row.
    pub fn access(&self, row: &[Option<Id>]) -> IdPattern {
        IdPattern::new(self.s.resolve(row), self.p.resolve(row), self.o.resolve(row))
    }

    /// The variable slots this pattern mentions (with duplicates).
    pub fn vars(&self) -> impl Iterator<Item = VarId> {
        [self.s, self.p, self.o].into_iter().filter_map(PatternTerm::as_var)
    }

    /// Number of positions that are constants or bound in `row`.
    pub fn bound_count(&self, row: &[Option<Id>]) -> usize {
        [self.s, self.p, self.o].into_iter().filter(|t| t.resolve(row).is_some()).count()
    }
}

/// A basic graph pattern: a conjunction of patterns over `var_count`
/// variable slots.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Bgp {
    /// The conjunctive triple patterns.
    pub patterns: Vec<Pattern>,
    /// Number of variable slots used across all patterns.
    pub var_count: u16,
}

impl Bgp {
    /// Creates a BGP, computing `var_count` from the highest slot used.
    pub fn new(patterns: Vec<Pattern>) -> Self {
        let var_count = patterns.iter().flat_map(Pattern::vars).map(|v| v.0 + 1).max().unwrap_or(0);
        Bgp { patterns, var_count }
    }

    /// An empty binding row for this BGP.
    pub fn empty_row(&self) -> Vec<Option<Id>> {
        vec![None; self.var_count as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: u32) -> PatternTerm {
        PatternTerm::Const(Id(v))
    }

    fn v(i: u16) -> PatternTerm {
        PatternTerm::Var(VarId(i))
    }

    #[test]
    fn resolve_against_row() {
        let row = vec![Some(Id(9)), None];
        assert_eq!(c(1).resolve(&row), Some(Id(1)));
        assert_eq!(v(0).resolve(&row), Some(Id(9)));
        assert_eq!(v(1).resolve(&row), None);
    }

    #[test]
    fn access_builds_id_pattern() {
        let p = Pattern::new(v(0), c(5), v(1));
        let row = vec![Some(Id(2)), None];
        let acc = p.access(&row);
        assert_eq!(acc, IdPattern::sp(Id(2), Id(5)));
        assert_eq!(p.bound_count(&row), 2);
        assert_eq!(p.bound_count(&[None, None]), 1);
    }

    #[test]
    fn bgp_var_count_is_max_slot_plus_one() {
        let bgp = Bgp::new(vec![Pattern::new(v(0), c(1), v(3)), Pattern::new(v(3), c(2), v(1))]);
        assert_eq!(bgp.var_count, 4);
        assert_eq!(bgp.empty_row().len(), 4);
        let empty = Bgp::new(vec![]);
        assert_eq!(empty.var_count, 0);
    }

    #[test]
    fn pattern_vars_lists_duplicates() {
        let p = Pattern::new(v(2), v(2), c(0));
        let vars: Vec<VarId> = p.vars().collect();
        assert_eq!(vars, vec![VarId(2), VarId(2)]);
        assert_eq!(c(0).as_const(), Some(Id(0)));
        assert_eq!(v(1).as_var(), Some(VarId(1)));
        assert_eq!(c(0).as_var(), None);
    }
}
