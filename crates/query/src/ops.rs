//! Aggregation operators used by the paper's benchmark queries.
//!
//! The Barton queries are aggregation-heavy: BQ1 counts subjects per
//! object, BQ2/BQ3/BQ4/BQ6 count property frequencies and "popular" object
//! values. These helpers implement the counting/grouping steps shared by
//! every store's plan, so measured differences come from index access, not
//! from different aggregation code. They take any `IntoIterator`, so a
//! lazy [`hexastore::TripleStore::iter_matching`] cursor feeds them
//! directly — e.g. `frequency(store.iter_matching(pat).map(|t| t.o))`.

use hex_dict::Id;

/// Counts occurrences of each id, returning `(id, count)` sorted by id.
pub fn frequency(items: impl IntoIterator<Item = Id>) -> Vec<(Id, usize)> {
    let mut v: Vec<Id> = items.into_iter().collect();
    v.sort_unstable();
    let mut out: Vec<(Id, usize)> = Vec::new();
    for id in v {
        match out.last_mut() {
            Some((last, n)) if *last == id => *n += 1,
            _ => out.push((id, 1)),
        }
    }
    out
}

/// Sums pre-counted `(id, count)` pairs by id, sorted by id.
pub fn merge_counts(pairs: impl IntoIterator<Item = (Id, usize)>) -> Vec<(Id, usize)> {
    let mut v: Vec<(Id, usize)> = pairs.into_iter().collect();
    v.sort_unstable_by_key(|&(id, _)| id);
    let mut out: Vec<(Id, usize)> = Vec::new();
    for (id, n) in v {
        match out.last_mut() {
            Some((last, total)) if *last == id => *total += n,
            _ => out.push((id, n)),
        }
    }
    out
}

/// Groups `(key, value)` pairs by key, values sorted and deduplicated;
/// result sorted by key.
pub fn group_by_key(pairs: impl IntoIterator<Item = (Id, Id)>) -> Vec<(Id, Vec<Id>)> {
    let mut v: Vec<(Id, Id)> = pairs.into_iter().collect();
    v.sort_unstable();
    v.dedup();
    let mut out: Vec<(Id, Vec<Id>)> = Vec::new();
    for (k, val) in v {
        match out.last_mut() {
            Some((last, vals)) if *last == k => vals.push(val),
            _ => out.push((k, vec![val])),
        }
    }
    out
}

/// Keeps only entries with `count > 1` — the paper's "popular object
/// values" filter of BQ3/BQ4.
pub fn popular(counts: Vec<(Id, usize)>) -> Vec<(Id, usize)> {
    counts.into_iter().filter(|&(_, n)| n > 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u32) -> Id {
        Id(v)
    }

    #[test]
    fn frequency_counts_and_sorts() {
        let f = frequency([id(3), id(1), id(3), id(3), id(2), id(1)]);
        assert_eq!(f, vec![(id(1), 2), (id(2), 1), (id(3), 3)]);
        assert_eq!(frequency([]), vec![]);
    }

    #[test]
    fn merge_counts_sums_by_key() {
        let m = merge_counts([(id(2), 5), (id(1), 1), (id(2), 3)]);
        assert_eq!(m, vec![(id(1), 1), (id(2), 8)]);
    }

    #[test]
    fn group_by_key_dedups_values() {
        let g = group_by_key([(id(1), id(9)), (id(2), id(4)), (id(1), id(9)), (id(1), id(3))]);
        assert_eq!(g, vec![(id(1), vec![id(3), id(9)]), (id(2), vec![id(4)])]);
    }

    #[test]
    fn popular_filters_singletons() {
        let p = popular(vec![(id(1), 1), (id(2), 2), (id(3), 7)]);
        assert_eq!(p, vec![(id(2), 2), (id(3), 7)]);
    }
}
