//! Oracle tests: the mmap-backed store must be observationally
//! identical to the fully-validated in-memory [`FrozenHexastore`] on
//! every access pattern, and [`hex_disk::open`] must refuse files it
//! cannot map rather than misread them.

use hex_dict::IdTriple;
use hexastore::hexsnap::{self, Compression};
use hexastore::{FrozenHexastore, GraphStore, IdPattern, TripleStore};
use proptest::prelude::*;
use rdf_model::{Term, Triple};
use std::path::PathBuf;

fn term(i: u32) -> Term {
    match i % 4 {
        0 => Term::iri(format!("http://x/r{i}")),
        1 => Term::literal(format!("plain {i}")),
        2 => Term::lang_literal(format!("étiquette {i}"), "fr"),
        _ => Term::typed_literal(format!("{i}"), "http://www.w3.org/2001/XMLSchema#integer"),
    }
}

fn graph_from(picks: &[(u32, u32, u32)]) -> GraphStore {
    let mut g = GraphStore::new();
    for &(s, p, o) in picks {
        g.insert(&Triple::new(
            Term::iri(format!("http://x/s{s}")),
            Term::iri(format!("http://x/p{p}")),
            term(o),
        ));
    }
    g
}

fn temp_path(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("hexdisk-{tag}-{}-{n}.hexsnap", std::process::id()))
}

/// Every pattern shape the store can be asked, seeded from its triples.
fn all_patterns(store: &dyn TripleStore) -> Vec<IdPattern> {
    let mut pats = vec![IdPattern::ALL];
    for tr in store.matching(IdPattern::ALL) {
        pats.extend([
            IdPattern::spo(tr),
            IdPattern::sp(tr.s, tr.p),
            IdPattern::so(tr.s, tr.o),
            IdPattern::po(tr.p, tr.o),
            IdPattern::s(tr.s),
            IdPattern::p(tr.p),
            IdPattern::o(tr.o),
        ]);
    }
    pats
}

fn assert_oracle_equivalent(oracle: &FrozenHexastore, mapped: &hex_disk::MmapFrozenHexastore) {
    assert_eq!(mapped.len(), oracle.len());
    for pat in all_patterns(oracle) {
        let want: Vec<IdTriple> = oracle.matching(pat);
        assert_eq!(mapped.matching(pat), want, "{pat:?}");
        assert_eq!(mapped.count_matching(pat), want.len(), "{pat:?}");
        for tr in &want {
            assert!(mapped.contains(*tr));
        }
        // Range sharding: every split point partitions identically.
        let n = want.len();
        for (start, end) in [(0, n), (0, n / 2), (n / 2, n), (1, n.saturating_sub(1)), (n, n)] {
            let got: Vec<IdTriple> = mapped.iter_matching_range(pat, start, end).collect();
            let want_slice: Vec<IdTriple> = oracle.iter_matching_range(pat, start, end).collect();
            assert_eq!(got, want_slice, "{pat:?} range {start}..{end}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The mapped store answers all eight patterns, counts, membership
    /// tests and range shards exactly like the in-memory frozen store
    /// built from the same graph.
    #[test]
    fn mmap_store_matches_frozen_oracle(
        picks in proptest::collection::vec((0u32..9, 0u32..5, 0u32..9), 0..60),
    ) {
        let g = graph_from(&picks);
        let oracle = g.store().freeze();
        let path = temp_path("oracle");
        hexsnap::save_frozen(&path, g.dict(), &oracle).unwrap();

        let (dict, mapped) = hex_disk::open(&path).unwrap();
        prop_assert_eq!(dict.len(), g.dict().len());
        assert_oracle_equivalent(&oracle, &mapped);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn mmap_store_serves_sorted_lists_and_merge_plans() {
    // Star data: evens carry p1→r4, multiples of 3 carry p2→r8, all fan
    // out via p3. Saved, reopened via mmap, and queried both ways.
    let mut picks = Vec::new();
    for s in 0..30u32 {
        if s % 2 == 0 {
            picks.push((s, 1, 4));
        }
        if s % 3 == 0 {
            picks.push((s, 2, 8));
        }
        picks.push((s, 3, 12 + s % 4));
    }
    let g = graph_from(&picks);
    let oracle = g.store().freeze();
    let path = temp_path("merge");
    hexsnap::save_frozen(&path, g.dict(), &oracle).unwrap();
    let (dict, mapped) = hex_disk::open(&path).unwrap();

    // Zero-copy capability: terminal lists come back as the oracle's.
    let sla = mapped.sorted_lists().expect("mmap store serves sorted lists");
    let oracle_sla = oracle.sorted_lists().unwrap();
    for pat in all_patterns(&oracle) {
        assert_eq!(sla.sorted_list(pat), oracle_sla.sorted_list(pat), "{pat:?}");
        if let Some(list) = sla.sorted_list(pat) {
            assert!(list.windows(2).all(|w| w[0] < w[1]), "strictly ascending {pat:?}");
        }
    }

    // A star query compiles a merge group against the mapped store and
    // answers byte-identically to the forced-nested walk and to the
    // parallel execution.
    let query = "SELECT ?s ?x WHERE { \
        ?s <http://x/p1> <http://x/r4> . \
        ?s <http://x/p2> <http://x/r8> . \
        ?s <http://x/p3> ?x . }";
    let plan = hex_query::prepare_on(&mapped, &dict, query).unwrap();
    assert!(plan.explain().contains("join=merge"), "{}", plan.explain());
    let mut nested = hex_query::prepare_on(&mapped, &dict, query).unwrap();
    nested.force_nested_joins();
    let reference = plan.run();
    assert_eq!(reference.len(), 5, "multiples of 6 in 0..30");
    assert_eq!(reference, nested.run());
    for threads in [2, 4] {
        assert_eq!(plan.run_parallel(&mapped, threads), reference);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn open_dataset_runs_queries_through_the_planner() {
    let g = graph_from(&[(0, 0, 0), (0, 1, 2), (3, 1, 2), (4, 2, 7), (4, 2, 1), (4, 2, 3)]);
    let oracle = g.store().freeze();
    let path = temp_path("dataset");
    hexsnap::save_frozen(&path, g.dict(), &oracle).unwrap();

    let ds = hex_disk::open_dataset(&path).unwrap();
    assert_eq!(ds.store().len(), oracle.len());
    // The Dataset wrapper resolves terms through the restored dictionary.
    for tr in oracle.matching(IdPattern::ALL) {
        assert!(ds.dict().decode(tr.s).is_some());
    }
    // Clones share the mapping: both answer after the original is dropped.
    let clone = ds.store().clone();
    drop(ds);
    assert_eq!(clone.count_matching(IdPattern::ALL), oracle.len());
    std::fs::remove_file(&path).ok();
}

#[test]
fn compressed_snapshots_are_refused_with_a_remedy() {
    let g = graph_from(&[(1, 1, 1), (2, 1, 3)]);
    let path = temp_path("compressed");
    hexsnap::save_frozen_with(&path, g.dict(), &g.store().freeze(), Compression::VarintDelta)
        .unwrap();

    let err = hex_disk::open(&path).unwrap_err();
    let msg = err.to_string();
    assert!(matches!(err, hex_disk::Error::Unmappable(_)), "{msg}");
    assert!(msg.contains("compressed"), "{msg}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshots_without_slabs_are_refused() {
    let g = graph_from(&[(1, 1, 1)]);
    let path = temp_path("noslab");
    hexsnap::save(&path, g.dict(), g.store()).unwrap();

    let err = hex_disk::open(&path).unwrap_err();
    assert!(matches!(err, hex_disk::Error::Unmappable(_)), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn unaligned_v1_files_are_refused_when_misaligned() {
    use std::io::Write;
    // A v1 writer emits no alignment padding; whether the slab section
    // happens to land 4-aligned depends on the dictionary byte length.
    // Craft a dictionary whose serialized size forces a misaligned FROZ
    // offset, then check the opener refuses it by version, not by luck.
    for extra in 0..4u32 {
        let mut g = GraphStore::new();
        g.insert(&Triple::new(
            Term::iri(format!("e:s{}", "x".repeat(extra as usize + 1))),
            Term::iri("e:p"),
            Term::iri("e:o"),
        ));
        let path = temp_path(&format!("v1-{extra}"));
        let file = std::fs::File::create(&path).unwrap();
        let mut w = hexsnap::Writer::with_version(std::io::BufWriter::new(file), 1).unwrap();
        w.dictionary(g.dict()).unwrap();
        w.frozen(&g.store().freeze()).unwrap();
        w.finish().unwrap().flush().unwrap();

        match hex_disk::open(&path) {
            // Aligned by accident: must answer correctly.
            Ok((_, mapped)) => assert_eq!(mapped.len(), 1),
            Err(e) => {
                assert!(matches!(e, hex_disk::Error::Unmappable(_)), "{e}");
                assert!(e.to_string().contains("version"), "{e}");
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn open_keeps_the_dictionary_arena_mapped() {
    let g = graph_from(&[(0, 0, 0), (1, 1, 2), (2, 0, 5), (3, 2, 7)]);
    let path = temp_path("mapped-dict");
    hexsnap::save_frozen(&path, g.dict(), &g.store().freeze()).unwrap();

    let (mut dict, mapped) = hex_disk::open(&path).unwrap();
    assert!(dict.arena_is_shared(), "string arena must stay behind the mapping");
    assert_eq!(dict.len(), g.dict().len());
    // Ids, decodes, and reverse lookups all resolve against mapped bytes.
    for (id, term) in g.dict().iter() {
        assert_eq!(dict.decode(id).as_ref(), Some(&term));
        assert_eq!(dict.id_of(&term), Some(id));
    }
    for tr in mapped.matching(IdPattern::ALL) {
        assert!(dict.decode(tr.s).is_some());
    }
    // Interning a new term copies the arena out of the map exactly once,
    // preserving every existing id.
    let next = dict.encode(&Term::iri("http://x/brand-new"));
    assert_eq!(next.index(), g.dict().len());
    assert!(!dict.arena_is_shared());
    for (id, term) in g.dict().iter() {
        assert_eq!(dict.id_of(&term), Some(id));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_bytes_anywhere_never_panic_the_opener() {
    let g = graph_from(&[(0, 0, 0), (1, 1, 2), (2, 0, 5)]);
    let path = temp_path("flip");
    hexsnap::save_frozen(&path, g.dict(), &g.store().freeze()).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    // Flip every byte of the file in turn — header, DICT (counts, kinds,
    // offset table, string arena), TRPL, FROZ, trailer. The opener must
    // reject or answer, never panic; when it opens, the dictionary must
    // still behave (decode may miss, must not crash).
    for i in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[i] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        if let Ok((dict, mapped)) = hex_disk::open(&path) {
            for id in 0..dict.len() as u32 {
                let _ = dict.decode(hex_dict::Id(id));
            }
            let _ = mapped.count_matching(IdPattern::ALL);
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncation_at_every_cut_never_panics_the_opener() {
    let g = graph_from(&[(0, 0, 0), (1, 1, 2)]);
    let path = temp_path("trunc");
    hexsnap::save_frozen(&path, g.dict(), &g.store().freeze()).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    for cut in 0..pristine.len() {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        assert!(hex_disk::open(&path).is_err(), "cut at {cut} must be rejected");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_graph_maps_and_answers_empty() {
    let g = GraphStore::new();
    let path = temp_path("empty");
    hexsnap::save_frozen(&path, g.dict(), &g.store().freeze()).unwrap();
    let (dict, mapped) = hex_disk::open(&path).unwrap();
    assert_eq!(dict.len(), 0);
    assert!(mapped.is_empty());
    assert_eq!(mapped.matching(IdPattern::ALL), Vec::new());
    std::fs::remove_file(&path).ok();
}
