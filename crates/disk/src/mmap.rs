//! A minimal read-only memory map over a whole file.
//!
//! Only what the slab reader needs: map the file, hand out `&[u8]`,
//! unmap on drop. On 64-bit unix this is a real `mmap(2)` call declared
//! directly against the C runtime (the workspace vendors no `libc`
//! crate; the symbols are already linked through `std`). Elsewhere the
//! "map" is an ordinary 8-byte-aligned read of the file — same API,
//! same alignment guarantees, no laziness.

use std::fs::File;
use std::io;

/// A read-only mapping of an entire file.
///
/// Dereferences to the file's bytes. The base address is page-aligned
/// on the mmap path and 8-byte-aligned on the fallback path, so a byte
/// offset that is 4-aligned *in the file* is 4-aligned *in memory* —
/// the property the zero-copy column views rely on.
pub struct Mmap {
    inner: Inner,
}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::c_void;

    // Declared directly: the workspace vendors no `libc` crate, and these
    // two symbols are in every unix C runtime `std` already links.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

#[cfg(all(unix, target_pointer_width = "64"))]
enum Inner {
    /// A live `mmap(2)` region; unmapped on drop.
    Mapped { ptr: *const u8, len: usize },
    /// Zero-length files cannot be mapped; represented as empty.
    Empty,
}

#[cfg(not(all(unix, target_pointer_width = "64")))]
enum Inner {
    /// Fallback: the whole file read into an 8-byte-aligned buffer.
    Owned { buf: Vec<u64>, len: usize },
}

// SAFETY: the mapping is created PROT_READ and never mutated or remapped
// after construction; sharing immutable bytes across threads is sound.
// (The fallback variant is a plain Vec and would be auto-Send/Sync; the
// raw pointer in the mapped variant is what suppresses the auto impls.)
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    #[cfg(all(unix, target_pointer_width = "64"))]
    pub fn map(file: &File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let len = usize::try_from(file.metadata()?.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space")
        })?;
        if len == 0 {
            return Ok(Mmap { inner: Inner::Empty });
        }
        // SAFETY: fd is a valid open file descriptor for `file`, len is
        // its non-zero size, and PROT_READ|MAP_PRIVATE asks for a fresh
        // read-only region chosen by the kernel.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { inner: Inner::Mapped { ptr: ptr as *const u8, len } })
    }

    /// Fallback "map": reads the whole file into an 8-byte-aligned
    /// buffer. Same API and alignment guarantees, no demand paging.
    #[cfg(not(all(unix, target_pointer_width = "64")))]
    pub fn map(file: &File) -> io::Result<Mmap> {
        use std::io::Read;
        let len = usize::try_from(file.metadata()?.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space")
        })?;
        let mut buf = vec![0u64; len.div_ceil(8)];
        // SAFETY: a u64 buffer reinterpreted as bytes is always valid.
        let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
        let mut r = file;
        r.read_exact(bytes)?;
        Ok(Mmap { inner: Inner::Owned { buf, len } })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            // SAFETY: ptr/len describe the live PROT_READ mapping created
            // in `map`, valid until `drop` unmaps it.
            Inner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            #[cfg(all(unix, target_pointer_width = "64"))]
            Inner::Empty => &[],
            #[cfg(not(all(unix, target_pointer_width = "64")))]
            // SAFETY: the u64 buffer holds at least `len` bytes.
            Inner::Owned { buf, len } => unsafe {
                std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len)
            },
        }
    }

    /// Number of mapped bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True if the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

// Lets an `Arc<Mmap>` serve as a `hex_dict::SharedBytes` provider, so
// the dictionary's string arena can borrow the mapping directly.
impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.bytes()
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl Drop for Mmap {
    fn drop(&mut self) {
        if let Inner::Mapped { ptr, len } = self.inner {
            // SAFETY: exactly the region `map` created, unmapped once.
            unsafe {
                sys::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents_and_unmaps() {
        let path = std::env::temp_dir().join(format!("hexdisk_mmap_{}.bin", std::process::id()));
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        {
            let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
            assert_eq!(map.len(), payload.len());
            assert!(!map.is_empty());
            assert_eq!(&map[..], &payload[..]);
            assert_eq!(map.as_ptr() as usize % 8, 0, "base must be at least 8-aligned");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_as_empty() {
        let path = std::env::temp_dir().join(format!("hexdisk_empty_{}.bin", std::process::id()));
        std::fs::File::create(&path).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
