//! Mmap-backed cold-open for `hexsnap` slab snapshots.
//!
//! [`hexastore::hexsnap::load_frozen`] reads an entire snapshot into
//! memory before the first query can run; for datasets at or beyond RAM
//! that eager read *is* the cold-start cost. This crate opens the same
//! file by memory-mapping it and reinterpreting the uncompressed `FROZ`
//! slab columns in place: open time becomes O(section headers), and the
//! operating system pages in exactly the columns queries touch.
//!
//! The entry points are [`open`] (dictionary + store) and
//! [`open_dataset`] (a ready-to-query [`hexastore::Dataset`]). The
//! returned [`MmapFrozenHexastore`] implements
//! [`hexastore::TripleStore`], so planning, parallel execution, and
//! snapshot serving work over it exactly as over the in-memory frozen
//! store.
//!
//! Only uncompressed version-2 snapshots are mappable: compressed
//! (`FRZC`) sections and unaligned version-1 files must go through the
//! decoding [`hexastore::hexsnap::load_frozen`] path, and [`open`] says
//! so in its error rather than silently falling back.
//!
//! ```no_run
//! use hexastore::hexsnap::save_frozen;
//! use hexastore::{GraphStore, IdPattern, TripleStore};
//! use rdf_model::{Term, Triple};
//!
//! let mut g = GraphStore::new();
//! g.insert(&Triple::new(Term::iri("e:s"), Term::iri("e:p"), Term::iri("e:o")));
//! let frozen = g.store().freeze();
//! save_frozen("snapshot.hexsnap", g.dict(), &frozen)?;
//!
//! // Elsewhere, later: open without reading the slabs.
//! let ds = hex_disk::open_dataset("snapshot.hexsnap")?;
//! assert_eq!(ds.store().count_matching(IdPattern::new(None, None, None)), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(missing_docs)]
#![deny(warnings)]

// The column views reinterpret little-endian file bytes as host-order
// `u32`s; on a big-endian target every id would be byte-swapped.
#[cfg(target_endian = "big")]
compile_error!(
    "hex-disk reinterprets little-endian snapshot columns and requires a little-endian target"
);

mod mmap;
mod store;

pub use mmap::Mmap;
pub use store::MmapFrozenHexastore;

use hex_dict::Dictionary;
use hexastore::hexsnap;
use hexastore::Dataset;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;
use std::sync::Arc;

/// Errors from opening a snapshot as a mapping.
#[derive(Debug)]
pub enum Error {
    /// The snapshot container or dictionary failed to parse.
    Snapshot(hexsnap::Error),
    /// The file parsed but cannot be memory-mapped (compressed slabs,
    /// an unaligned v1 layout, or no slab section at all). The message
    /// names the remedy.
    Unmappable(String),
    /// The mapped slab section's interior is structurally invalid.
    Corrupt(String),
    /// The underlying file could not be opened or mapped.
    Io(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Snapshot(e) => write!(f, "snapshot error: {e}"),
            Error::Unmappable(m) => write!(f, "snapshot cannot be mapped: {m}"),
            Error::Corrupt(m) => write!(f, "mapped slab section is corrupt: {m}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Snapshot(e) => Some(e),
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hexsnap::Error> for Error {
    fn from(e: hexsnap::Error) -> Self {
        Error::Snapshot(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Opens a `hexsnap` file as a dictionary plus an mmap-backed frozen
/// store, without reading the slab columns or copying the term strings.
///
/// The `DICT` section is parsed in place: the kind column and the piece
/// offset table are copied (both small, a few bytes per term), but the
/// string arena — the bulk of the section — stays behind the mapping as
/// a [`hex_dict::SharedBytes`] window, shared with the slab columns in
/// one `mmap` of the whole file. Open-time work on the arena is one
/// validating hash pass (UTF-8 + index build), no per-term allocation.
/// Fails with [`Error::Unmappable`] for snapshots whose slabs were
/// saved compressed, for pre-v2 files whose slab section is not 4-byte
/// aligned, and for snapshots carrying no frozen section — re-save
/// those with [`hexastore::hexsnap::save_frozen`] under the current
/// format version.
///
/// ```no_run
/// let (dict, store) = hex_disk::open("snapshot.hexsnap")?;
/// let ds = hexastore::Dataset::from_parts(dict, store);
/// # Ok::<(), hex_disk::Error>(())
/// ```
pub fn open(path: impl AsRef<Path>) -> Result<(Dictionary, MmapFrozenHexastore)> {
    let file = File::open(path)?;
    let reader = hexsnap::Reader::new(BufReader::new(&file))?;
    let froz = frozen_extent(&reader)?;
    let dict_extent = reader.dict_section_extent();
    drop(reader);
    let map = Arc::new(Mmap::map(&file)?);
    let dict = dict_from(&map, dict_extent)?;
    let store = store_from(&map, froz)?;
    Ok((dict, store))
}

/// Opens only the slab section of a `hexsnap` file as an mmap-backed
/// store, skipping the dictionary entirely.
///
/// Skips even the dictionary's open-time hash pass; callers that
/// already hold the dictionary (a serving tier re-opening generations
/// of the same dataset, or a measurement isolating the slab path) can
/// use it directly. Same mapping requirements as [`open`].
///
/// ```no_run
/// let store = hex_disk::open_store("snapshot.hexsnap")?;
/// # Ok::<(), hex_disk::Error>(())
/// ```
pub fn open_store(path: impl AsRef<Path>) -> Result<MmapFrozenHexastore> {
    let file = File::open(path)?;
    let reader = hexsnap::Reader::new(BufReader::new(&file))?;
    let froz = frozen_extent(&reader)?;
    drop(reader);
    let map = Arc::new(Mmap::map(&file)?);
    store_from(&map, froz)
}

/// Locates the raw `FROZ` extent and checks mappability, naming the
/// remedy when there is none.
fn frozen_extent(reader: &hexsnap::Reader<BufReader<&File>>) -> Result<(u64, u64)> {
    let (off, len) = match reader.frozen_section_extent() {
        Some(extent) => extent,
        None if reader.has_frozen() => {
            return Err(Error::Unmappable(
                "the slab section is compressed; re-save with Compression::None \
                 or open via hexsnap::load_frozen"
                    .to_string(),
            ));
        }
        None => {
            return Err(Error::Unmappable(
                "the snapshot has no frozen slab section; save one with hexsnap::save_frozen"
                    .to_string(),
            ));
        }
    };
    if off % 4 != 0 {
        return Err(Error::Unmappable(format!(
            "the slab section starts at unaligned offset {off} (a version-{} file); \
             re-save under format version {} to align it",
            reader.version(),
            hexsnap::VERSION,
        )));
    }
    Ok((off, len))
}

/// Parses the slab column descriptors out of an established mapping.
fn store_from(map: &Arc<Mmap>, (off, len): (u64, u64)) -> Result<MmapFrozenHexastore> {
    let sec_off = usize::try_from(off).map_err(|_| {
        Error::Unmappable("slab section offset exceeds the address space".to_string())
    })?;
    let sec_len = usize::try_from(len).map_err(|_| {
        Error::Unmappable("slab section length exceeds the address space".to_string())
    })?;
    let (n, arenas, orderings) =
        store::parse_frozen_section(map, sec_off, sec_len).map_err(Error::Corrupt)?;
    Ok(MmapFrozenHexastore::new(Arc::clone(map), n, arenas, orderings))
}

/// Parses the `DICT` section out of the mapping, keeping the string
/// arena mapped.
///
/// Mirrors `hexsnap::Reader::dictionary` check for check — same
/// allocation bounds, same rejection messages — but hands the arena
/// extent to [`Dictionary::try_from_shared_arena`] instead of copying
/// the bytes. The constructor validates the offset table against the
/// mapped bytes (kind bytes, UTF-8, char boundaries, distinctness); a
/// file mutated after that is the provider's breach of trust and
/// degrades to missed lookups and `None` decodes, never a panic.
fn dict_from(map: &Arc<Mmap>, extent: Option<(u64, u64)>) -> Result<Dictionary> {
    fn corrupt<T>(msg: impl Into<String>) -> Result<T> {
        Err(Error::Snapshot(hexsnap::Error::Corrupt(msg.into())))
    }
    let Some((off, len)) = extent else {
        return corrupt("missing DICT section");
    };
    let sec_off = usize::try_from(off).map_err(|_| {
        Error::Unmappable("dictionary section offset exceeds the address space".to_string())
    })?;
    let sec_len = usize::try_from(len).map_err(|_| {
        Error::Unmappable("dictionary section length exceeds the address space".to_string())
    })?;
    // The reader validated the section table against the file length,
    // but re-check before slicing: a short mapping must be a rejection.
    let Some(sec) = sec_off.checked_add(sec_len).and_then(|end| map.bytes().get(sec_off..end))
    else {
        return corrupt("dictionary section extent exceeds the file");
    };
    struct Cur<'a> {
        sec: &'a [u8],
        pos: usize,
    }
    impl<'a> Cur<'a> {
        fn take(&mut self, n: usize) -> Result<&'a [u8]> {
            match self.pos.checked_add(n).and_then(|end| self.sec.get(self.pos..end)) {
                Some(bytes) => {
                    self.pos += n;
                    Ok(bytes)
                }
                None => corrupt("dictionary section contents overrun the declared extent"),
            }
        }
        fn u32(&mut self) -> Result<usize> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes taken")) as usize)
        }
    }
    let mut cur = Cur { sec, pos: 0 };
    let n = cur.u32()?;
    // Every declared count must fit in the section: this bounds
    // allocations before they happen, so a flipped count byte cannot
    // balloon memory.
    if n > sec_len {
        return corrupt("dictionary term count exceeds section size");
    }
    let kinds = cur.take(n)?.to_vec();
    let n_pieces = cur.u32()?;
    if n_pieces.checked_mul(4).is_none_or(|bytes| bytes > sec_len) {
        return corrupt("dictionary piece count exceeds section size");
    }
    let ends: Vec<u32> = cur
        .take(n_pieces * 4)?
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect();
    let n_bytes_u64 = u64::from_le_bytes(cur.take(8)?.try_into().expect("8 bytes taken"));
    let Ok(n_bytes) = usize::try_from(n_bytes_u64) else {
        return corrupt("dictionary arena size exceeds section size");
    };
    if n_bytes > sec_len {
        return corrupt("dictionary arena size exceeds section size");
    }
    let arena_off = sec_off + cur.pos;
    cur.take(n_bytes)?;
    let bytes: hex_dict::SharedBytes = Arc::clone(map) as hex_dict::SharedBytes;
    Dictionary::try_from_shared_arena(kinds, ends, bytes, arena_off, n_bytes)
        .map_err(|e| Error::Snapshot(hexsnap::Error::Corrupt(e.to_string())))
}

/// Opens a `hexsnap` file directly as a queryable
/// [`Dataset<MmapFrozenHexastore>`](hexastore::Dataset).
///
/// Convenience over [`open`] + [`Dataset::from_parts`]; see [`open`]
/// for the mapping requirements and failure modes.
pub fn open_dataset(path: impl AsRef<Path>) -> Result<Dataset<MmapFrozenHexastore>> {
    let (dict, store) = open(path)?;
    Ok(Dataset::from_parts(dict, store))
}
