//! The mmap-backed frozen store: zero-copy column views over a `FROZ`
//! section.

use crate::mmap::Mmap;
use hex_dict::{Id, IdTriple};
use hexastore::pattern::{IdPattern, Shape};
use hexastore::traits::{SortedListAccess, TripleIter, TripleStore};
use hexastore::{IndexSet, Span, StatsSource};
use std::sync::Arc;

/// Canonical ordering positions in the `FROZ` walk.
const SPO: usize = 0;
const SOP: usize = 1;
const PSO: usize = 2;
const POS: usize = 3;
const OSP: usize = 4;
// Position 5 is ops; every query shape it could serve is covered by a
// paired ordering above, so it is mapped but never walked by name.
/// Canonical arena positions: object, property, subject lists.
const O_LISTS: usize = 0;
const P_LISTS: usize = 1;
const S_LISTS: usize = 2;
/// Which arena each ordering's terminal lists live in.
const ARENA_OF: [usize; 6] = [O_LISTS, P_LISTS, O_LISTS, S_LISTS, P_LISTS, S_LISTS];

/// A column inside the mapping: byte offset and element count. The
/// element width is implied by the accessor that materializes it.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Col {
    off: usize,
    n: usize,
}

/// Column descriptors of one arena: span table + item column.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ArCols {
    spans: Col,
    items: Col,
}

/// Column descriptors of one ordering: header keys and spans, vector
/// keys, terminal-list references.
#[derive(Clone, Copy, Debug)]
pub(crate) struct IxCols {
    keys: Col,
    spans: Col,
    k2: Col,
    lists: Col,
}

/// A [`hexastore::FrozenHexastore`]-equivalent read path over a mapped
/// `hexsnap` file: the slab columns are *reinterpreted in place*, so
/// opening touches only the section headers and cold-query I/O is
/// driven by page faults on exactly the columns a query walks.
///
/// Obtain one with [`crate::open`] or [`crate::open_dataset`]; it
/// implements [`TripleStore`] (including `iter_matching_range`), so the
/// planner, `Plan::run_parallel` and `Dataset` machinery work over it
/// unchanged. Like the in-memory frozen store it is read-only
/// (`insert`/`remove` panic) and [`Clone`] is a reference-count bump on
/// the shared mapping.
///
/// # Trust model
///
/// Open-time validation is structural and O(sections): extents, counts
/// and alignment. Data-level invariants (sortedness, span tiling, pair
/// consistency, ids within the dictionary) are *not* eagerly verified —
/// walking them would fault in the whole file, which is exactly what
/// this type exists to avoid. All accessors clamp instead of panicking,
/// so a corrupt file yields wrong answers, never undefined behavior or
/// a crash; files from untrusted writers should be opened through
/// [`hexastore::hexsnap::load_frozen`] instead, which validates fully.
#[derive(Clone)]
pub struct MmapFrozenHexastore {
    map: Arc<Mmap>,
    arenas: [ArCols; 3],
    orderings: [IxCols; 6],
    len: usize,
}

/// Open-time parse errors for the mapped section (wrapped into
/// [`crate::Error::Corrupt`] by [`crate::open`]).
pub(crate) fn parse_frozen_section(
    map: &Mmap,
    sec_off: usize,
    sec_len: usize,
) -> Result<(usize, [ArCols; 3], [IxCols; 6]), String> {
    let end = sec_off
        .checked_add(sec_len)
        .filter(|&e| e <= map.len())
        .ok_or_else(|| "FROZ section extends past the file".to_string())?;
    let mut cur = Cursor { map, pos: sec_off, end };
    let len = usize::try_from(cur.u64("triple count")?)
        .map_err(|_| "triple count overflows usize".to_string())?;
    let mut arenas = Vec::with_capacity(3);
    for _ in 0..3 {
        let n_lists = cur.u32("arena list count")? as usize;
        let n_items = usize::try_from(cur.u64("arena item count")?)
            .map_err(|_| "arena item count overflows usize".to_string())?;
        let spans = cur.col(n_lists, 8, "arena span table")?;
        let items = cur.col(n_items, 4, "arena item column")?;
        // Every triple contributes one entry to each pair's item column;
        // a count mismatch is detectable without touching the columns.
        if n_items != len {
            return Err("declared triple count disagrees with slab columns".to_string());
        }
        arenas.push(ArCols { spans, items });
    }
    let mut orderings = Vec::with_capacity(6);
    for _ in 0..6 {
        let h = cur.u32("ordering header count")? as usize;
        let keys = cur.col(h, 4, "ordering key column")?;
        let spans = cur.col(h, 8, "ordering span table")?;
        let m = cur.u32("ordering vector count")? as usize;
        let k2 = cur.col(m, 4, "ordering vector column")?;
        let lists = cur.col(m, 4, "ordering list column")?;
        orderings.push(IxCols { keys, spans, k2, lists });
    }
    let arenas: [ArCols; 3] = arenas.try_into().expect("exactly three arenas");
    let orderings: [IxCols; 6] = orderings.try_into().expect("exactly six orderings");
    Ok((len, arenas, orderings))
}

/// A bounds-checked walk over the mapped section bytes.
struct Cursor<'a> {
    map: &'a Mmap,
    pos: usize,
    end: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize, what: &str) -> Result<usize, String> {
        let start = self.pos;
        let next = start
            .checked_add(n)
            .filter(|&e| e <= self.end)
            .ok_or_else(|| format!("{what} exceeds the FROZ section"))?;
        self.pos = next;
        Ok(start)
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        let at = self.take(4, what)?;
        Ok(u32::from_le_bytes(self.map[at..at + 4].try_into().expect("4 bytes taken")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        let at = self.take(8, what)?;
        Ok(u64::from_le_bytes(self.map[at..at + 8].try_into().expect("8 bytes taken")))
    }

    fn col(&mut self, n: usize, width: usize, what: &str) -> Result<Col, String> {
        let bytes = n.checked_mul(width).ok_or_else(|| format!("{what} count overflows"))?;
        let off = self.take(bytes, what)?;
        // The section start is 4-aligned (checked by the opener) and
        // every preceding field is a 4-byte multiple, so this always
        // holds for v2 writer output; it is cheap insurance against a
        // hand-built file whose columns would misalign the casts below.
        if off % 4 != 0 {
            return Err(format!("{what} is not 4-byte aligned"));
        }
        Ok(Col { off, n })
    }
}

/// Borrowed view of one ordering's columns. `Copy` so iterator closures
/// can own it outright.
#[derive(Clone, Copy)]
struct IxView<'a> {
    keys: &'a [Id],
    spans: &'a [Span],
    k2: &'a [Id],
    lists: &'a [u32],
}

impl<'a> IxView<'a> {
    fn header_span(self, k1: Id) -> Option<Span> {
        self.keys.binary_search(&k1).ok().and_then(|i| self.spans.get(i).copied())
    }

    /// The clamped `k2`/`lists` window of header `k1` — corrupt spans
    /// yield a short (possibly empty) window, never a panic.
    fn window(self, k1: Id) -> std::ops::Range<usize> {
        match self.header_span(k1) {
            Some(span) => clamp(span, self.k2.len()),
            None => 0..0,
        }
    }

    fn list_idx(self, k1: Id, k2: Id) -> Option<u32> {
        let window = self.window(k1);
        let lo = window.start;
        self.k2[window].binary_search(&k2).ok().and_then(move |i| self.lists.get(lo + i).copied())
    }

    /// The `(k2, list)` leaves of header `k1`, in stored order.
    fn division(self, k1: Id) -> impl Iterator<Item = (Id, u32)> + 'a {
        self.window(k1).map(move |i| (self.k2[i], self.lists[i]))
    }

    /// Every `(k1, k2, list)` entry, in `(k1, k2)` order.
    fn scan(self) -> impl Iterator<Item = (Id, Id, u32)> + 'a {
        self.keys.iter().copied().zip(self.spans.iter().copied()).flat_map(move |(k1, span)| {
            clamp(span, self.k2.len()).map(move |i| (k1, self.k2[i], self.lists[i]))
        })
    }
}

/// Borrowed view of one arena's columns.
#[derive(Clone, Copy)]
struct ArView<'a> {
    spans: &'a [Span],
    items: &'a [Id],
}

impl<'a> ArView<'a> {
    /// The items of list `idx`, clamped to the column — corrupt indices
    /// or spans yield a short (possibly empty) slice, never a panic.
    fn get(self, idx: u32) -> &'a [Id] {
        match self.spans.get(idx as usize) {
            Some(&span) => &self.items[clamp(span, self.items.len())],
            None => &[],
        }
    }
}

/// A span's window clamped to a column of `n` elements.
fn clamp(span: Span, n: usize) -> std::ops::Range<usize> {
    let lo = (span.off as usize).min(n);
    let hi = (span.off as usize).saturating_add(span.len as usize).min(n);
    lo..hi
}

impl MmapFrozenHexastore {
    pub(crate) fn new(
        map: Arc<Mmap>,
        len: usize,
        arenas: [ArCols; 3],
        orderings: [IxCols; 6],
    ) -> Self {
        MmapFrozenHexastore { map, arenas, orderings, len }
    }

    /// Reinterprets a column as ids.
    ///
    /// SAFETY of the cast: the parser bounds every column inside the
    /// mapping and rejects non-4-aligned offsets; the mapping base is
    /// page-aligned (8-aligned on the fallback path), so the pointer is
    /// aligned for `u32`. `Id` is `repr(transparent)` over `u32` and any
    /// bit pattern is a valid id; the crate compiles only on
    /// little-endian targets, so file order is host order.
    fn ids(&self, col: Col) -> &[Id] {
        let bytes = &self.map[col.off..col.off + col.n * 4];
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const Id, col.n) }
    }

    /// Reinterprets a column as raw `u32`s (same argument as [`Self::ids`]).
    fn u32s(&self, col: Col) -> &[u32] {
        let bytes = &self.map[col.off..col.off + col.n * 4];
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, col.n) }
    }

    /// Reinterprets a span table. `Span` is `repr(C)` `{ off: u32, len:
    /// u32 }` — exactly the byte pairs the writer emits — and 4-aligned.
    fn spans(&self, col: Col) -> &[Span] {
        let bytes = &self.map[col.off..col.off + col.n * 8];
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const Span, col.n) }
    }

    fn ix(&self, which: usize) -> IxView<'_> {
        let c = self.orderings[which];
        IxView {
            keys: self.ids(c.keys),
            spans: self.spans(c.spans),
            k2: self.ids(c.k2),
            lists: self.u32s(c.lists),
        }
    }

    fn ar(&self, which: usize) -> ArView<'_> {
        let c = self.arenas[which];
        ArView { spans: self.spans(c.spans), items: self.ids(c.items) }
    }

    fn list(&self, ixw: usize, k1: Id, k2: Id) -> &[Id] {
        let ar = self.ar(ARENA_OF[ixw]);
        self.ix(ixw).list_idx(k1, k2).map_or(&[], move |l| ar.get(l))
    }

    fn division(&self, ixw: usize, k1: Id) -> impl Iterator<Item = (Id, &[Id])> + '_ {
        let ar = self.ar(ARENA_OF[ixw]);
        self.ix(ixw).division(k1).map(move |(k2, l)| (k2, ar.get(l)))
    }

    /// Sorted objects o with (s, p, o) stored — the spo/pso shared list.
    pub fn objects_for(&self, s: Id, p: Id) -> &[Id] {
        self.list(SPO, s, p)
    }

    /// Sorted properties p with (s, p, o) stored — the sop/osp shared list.
    pub fn properties_for(&self, s: Id, o: Id) -> &[Id] {
        self.list(SOP, s, o)
    }

    /// Sorted subjects s with (s, p, o) stored — the pos/ops shared list.
    pub fn subjects_for(&self, p: Id, o: Id) -> &[Id] {
        self.list(POS, p, o)
    }

    /// Bytes of file backing this store — the mapped region. The
    /// complement of [`TripleStore::heap_bytes`], which is near zero
    /// here: the columns live in the page cache, not on the heap.
    pub fn mapped_bytes(&self) -> usize {
        self.map.len()
    }
}

impl std::fmt::Debug for MmapFrozenHexastore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapFrozenHexastore")
            .field("triples", &self.len)
            .field("mapped_bytes", &self.mapped_bytes())
            .finish()
    }
}

/// Yields the `[start, start + len)` window of a concatenation of
/// terminal lists without constructing the prefix (the same length
/// arithmetic as the in-memory frozen store's range cursor).
fn window_lists<'a, K, I, F>(groups: I, make: F, start: usize, len: usize) -> TripleIter<'a>
where
    K: Copy + 'a,
    I: Iterator<Item = (K, &'a [Id])> + 'a,
    F: Fn(K, Id) -> IdTriple + Copy + 'a,
{
    let mut skip = start;
    Box::new(
        groups
            .filter_map(move |(k, items)| {
                if skip >= items.len() {
                    skip -= items.len();
                    None
                } else {
                    let from = skip;
                    skip = 0;
                    Some((k, &items[from..]))
                }
            })
            .flat_map(move |(k, items)| items.iter().map(move |&item| make(k, item)))
            .take(len),
    )
}

impl TripleStore for MmapFrozenHexastore {
    fn name(&self) -> &'static str {
        "MmapFrozenHexastore"
    }

    fn len(&self) -> usize {
        self.len
    }

    /// # Panics
    ///
    /// Always — mapped stores are read-only views of the file.
    fn insert(&mut self, _: IdTriple) -> bool {
        panic!("MmapFrozenHexastore is read-only: load_frozen() and thaw() to mutate")
    }

    /// # Panics
    ///
    /// Always — mapped stores are read-only views of the file.
    fn remove(&mut self, _: IdTriple) -> bool {
        panic!("MmapFrozenHexastore is read-only: load_frozen() and thaw() to mutate")
    }

    fn contains(&self, t: IdTriple) -> bool {
        hexastore::sorted::contains(self.objects_for(t.s, t.p), &t.o)
    }

    fn for_each_matching(&self, pat: IdPattern, f: &mut dyn FnMut(IdTriple)) {
        match pat.shape() {
            Shape::Spo => {
                let t = IdTriple::new(pat.s.unwrap(), pat.p.unwrap(), pat.o.unwrap());
                if self.contains(t) {
                    f(t);
                }
            }
            Shape::Sp => {
                let (s, p) = (pat.s.unwrap(), pat.p.unwrap());
                for &o in self.objects_for(s, p) {
                    f(IdTriple::new(s, p, o));
                }
            }
            Shape::So => {
                let (s, o) = (pat.s.unwrap(), pat.o.unwrap());
                for &p in self.properties_for(s, o) {
                    f(IdTriple::new(s, p, o));
                }
            }
            Shape::Po => {
                let (p, o) = (pat.p.unwrap(), pat.o.unwrap());
                for &s in self.subjects_for(p, o) {
                    f(IdTriple::new(s, p, o));
                }
            }
            Shape::S => {
                let s = pat.s.unwrap();
                for (p, objs) in self.division(SPO, s) {
                    for &o in objs {
                        f(IdTriple::new(s, p, o));
                    }
                }
            }
            Shape::P => {
                let p = pat.p.unwrap();
                for (s, objs) in self.division(PSO, p) {
                    for &o in objs {
                        f(IdTriple::new(s, p, o));
                    }
                }
            }
            Shape::O => {
                let o = pat.o.unwrap();
                for (s, props) in self.division(OSP, o) {
                    for &p in props {
                        f(IdTriple::new(s, p, o));
                    }
                }
            }
            Shape::None_ => {
                let ar = self.ar(O_LISTS);
                for (s, p, l) in self.ix(SPO).scan() {
                    for &o in ar.get(l) {
                        f(IdTriple::new(s, p, o));
                    }
                }
            }
        }
    }

    fn iter_matching(&self, pat: IdPattern) -> TripleIter<'_> {
        match pat.shape() {
            Shape::Spo => {
                let t = IdTriple::new(pat.s.unwrap(), pat.p.unwrap(), pat.o.unwrap());
                Box::new(self.contains(t).then_some(t).into_iter())
            }
            Shape::Sp => {
                let (s, p) = (pat.s.unwrap(), pat.p.unwrap());
                Box::new(self.objects_for(s, p).iter().map(move |&o| IdTriple::new(s, p, o)))
            }
            Shape::So => {
                let (s, o) = (pat.s.unwrap(), pat.o.unwrap());
                Box::new(self.properties_for(s, o).iter().map(move |&p| IdTriple::new(s, p, o)))
            }
            Shape::Po => {
                let (p, o) = (pat.p.unwrap(), pat.o.unwrap());
                Box::new(self.subjects_for(p, o).iter().map(move |&s| IdTriple::new(s, p, o)))
            }
            Shape::S => {
                let s = pat.s.unwrap();
                Box::new(
                    self.division(SPO, s).flat_map(move |(p, objs)| {
                        objs.iter().map(move |&o| IdTriple::new(s, p, o))
                    }),
                )
            }
            Shape::P => {
                let p = pat.p.unwrap();
                Box::new(
                    self.division(PSO, p).flat_map(move |(s, objs)| {
                        objs.iter().map(move |&o| IdTriple::new(s, p, o))
                    }),
                )
            }
            Shape::O => {
                let o = pat.o.unwrap();
                Box::new(
                    self.division(OSP, o).flat_map(move |(s, props)| {
                        props.iter().map(move |&p| IdTriple::new(s, p, o))
                    }),
                )
            }
            Shape::None_ => {
                let ar = self.ar(O_LISTS);
                Box::new(self.ix(SPO).scan().flat_map(move |(s, p, l)| {
                    ar.get(l).iter().map(move |&o| IdTriple::new(s, p, o))
                }))
            }
        }
    }

    fn iter_matching_range(&self, pat: IdPattern, start: usize, end: usize) -> TripleIter<'_> {
        let len = end.saturating_sub(start);
        if len == 0 {
            return Box::new(std::iter::empty());
        }
        fn slice(items: &[Id], start: usize, end: usize) -> &[Id] {
            let hi = end.min(items.len());
            &items[start.min(hi)..hi]
        }
        match pat.shape() {
            Shape::Spo => Box::new(self.iter_matching(pat).skip(start).take(len)),
            Shape::Sp => {
                let (s, p) = (pat.s.unwrap(), pat.p.unwrap());
                Box::new(
                    slice(self.objects_for(s, p), start, end)
                        .iter()
                        .map(move |&o| IdTriple::new(s, p, o)),
                )
            }
            Shape::So => {
                let (s, o) = (pat.s.unwrap(), pat.o.unwrap());
                Box::new(
                    slice(self.properties_for(s, o), start, end)
                        .iter()
                        .map(move |&p| IdTriple::new(s, p, o)),
                )
            }
            Shape::Po => {
                let (p, o) = (pat.p.unwrap(), pat.o.unwrap());
                Box::new(
                    slice(self.subjects_for(p, o), start, end)
                        .iter()
                        .map(move |&s| IdTriple::new(s, p, o)),
                )
            }
            Shape::S => {
                let s = pat.s.unwrap();
                window_lists(self.division(SPO, s), move |p, o| IdTriple::new(s, p, o), start, len)
            }
            Shape::P => {
                let p = pat.p.unwrap();
                window_lists(self.division(PSO, p), move |s, o| IdTriple::new(s, p, o), start, len)
            }
            Shape::O => {
                let o = pat.o.unwrap();
                window_lists(self.division(OSP, o), move |s, p| IdTriple::new(s, p, o), start, len)
            }
            Shape::None_ => {
                let ar = self.ar(O_LISTS);
                window_lists(
                    self.ix(SPO).scan().map(move |(s, p, l)| ((s, p), ar.get(l))),
                    move |(s, p), o| IdTriple::new(s, p, o),
                    start,
                    len,
                )
            }
        }
    }

    fn capabilities(&self) -> IndexSet {
        IndexSet::all()
    }

    fn count_matching(&self, pat: IdPattern) -> usize {
        match pat.shape() {
            Shape::Spo => usize::from(self.contains(IdTriple::new(
                pat.s.unwrap(),
                pat.p.unwrap(),
                pat.o.unwrap(),
            ))),
            Shape::Sp => self.objects_for(pat.s.unwrap(), pat.p.unwrap()).len(),
            Shape::So => self.properties_for(pat.s.unwrap(), pat.o.unwrap()).len(),
            Shape::Po => self.subjects_for(pat.p.unwrap(), pat.o.unwrap()).len(),
            Shape::S => self.division(SPO, pat.s.unwrap()).map(|(_, l)| l.len()).sum(),
            Shape::P => self.division(PSO, pat.p.unwrap()).map(|(_, l)| l.len()).sum(),
            Shape::O => self.division(OSP, pat.o.unwrap()).map(|(_, l)| l.len()).sum(),
            Shape::None_ => self.len,
        }
    }

    /// Near zero by design: the columns live in the page cache behind
    /// the mapping, not on this store's heap. See
    /// [`MmapFrozenHexastore::mapped_bytes`] for the file-backed size.
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    fn sorted_lists(&self) -> Option<&dyn SortedListAccess> {
        Some(self)
    }
}

impl SortedListAccess for MmapFrozenHexastore {
    fn sorted_list(&self, pat: IdPattern) -> Option<&[Id]> {
        match pat.shape() {
            Shape::Sp => Some(self.objects_for(pat.s.unwrap(), pat.p.unwrap())),
            Shape::So => Some(self.properties_for(pat.s.unwrap(), pat.o.unwrap())),
            Shape::Po => Some(self.subjects_for(pat.p.unwrap(), pat.o.unwrap())),
            _ => None,
        }
    }
}

impl StatsSource for MmapFrozenHexastore {}
