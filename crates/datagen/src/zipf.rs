//! A small, deterministic Zipf sampler.
//!
//! The Barton catalog's property frequencies are heavily skewed — "the vast
//! majority of properties appear infrequently" (§5.1.1) — so the synthetic
//! catalog draws its long-tail properties from a Zipf distribution.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`: rank `k` has
/// probability proportional to `1 / (k+1)^s`. Sampling is a binary search
/// over the precomputed CDF.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there is exactly one rank (degenerate distribution).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranks_are_in_range() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
        assert_eq!(z.len(), 10);
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(100, 1.5);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50].max(1));
        // Head mass: rank 0 should hold a large share under s = 1.5.
        assert!(counts[0] as f64 / 20_000.0 > 0.3);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let z = Zipf::new(50, 1.1);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
