//! LUBM-like synthetic academic data (paper §5.1.2).
//!
//! The paper's second dataset is the Lehigh University Benchmark: "ten
//! universities with 18 different predicates resulting in a total of
//! 6,865,225 triples". The original generator (UBA) is a Java tool; this
//! module reproduces the schema slice the paper's five LUBM queries touch,
//! with **exactly 18 predicates**, the same entity hierarchy
//! (university → department → faculty/students/courses) and comparable
//! cardinalities, deterministically from a seed.
//!
//! The entities the queries name (`AssociateProfessor10`, `Course10`,
//! `University0`) exist for every generated scale, via the [`Vocab`]
//! helpers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdf_model::{Term, Triple};

/// Namespace prefix of all generated LUBM resources.
pub const NS: &str = "http://lubm.example.org/";

/// The 18 predicates, mirroring the LUBM vocabulary subset the paper used.
pub const PREDICATES: [&str; 18] = [
    "type",
    "subOrganizationOf",
    "worksFor",
    "memberOf",
    "headOf",
    "teacherOf",
    "takesCourse",
    "teachingAssistantOf",
    "advisor",
    "undergraduateDegreeFrom",
    "mastersDegreeFrom",
    "doctoralDegreeFrom",
    "publicationAuthor",
    "researchInterest",
    "name",
    "emailAddress",
    "telephone",
    "officeNumber",
];

/// IRI constructors for the generated universe.
pub struct Vocab;

impl Vocab {
    /// A predicate IRI, e.g. `advisor`.
    pub fn predicate(name: &str) -> Term {
        debug_assert!(PREDICATES.contains(&name), "unknown predicate {name}");
        Term::iri(format!("{NS}{name}"))
    }

    /// A class IRI, e.g. `FullProfessor`.
    pub fn class(name: &str) -> Term {
        Term::iri(format!("{NS}{name}"))
    }

    /// `University{u}`.
    pub fn university(u: usize) -> Term {
        Term::iri(format!("{NS}University{u}"))
    }

    /// `Department{d}.University{u}`.
    pub fn department(u: usize, d: usize) -> Term {
        Term::iri(format!("{NS}Department{d}.University{u}"))
    }

    /// `FullProfessor{i}` of a department.
    pub fn full_professor(u: usize, d: usize, i: usize) -> Term {
        Term::iri(format!("{NS}Department{d}.University{u}/FullProfessor{i}"))
    }

    /// `AssociateProfessor{i}` of a department (LQ3–LQ5 bind i = 10 in
    /// Department0.University0).
    pub fn associate_professor(u: usize, d: usize, i: usize) -> Term {
        Term::iri(format!("{NS}Department{d}.University{u}/AssociateProfessor{i}"))
    }

    /// `Lecturer{i}` of a department.
    pub fn lecturer(u: usize, d: usize, i: usize) -> Term {
        Term::iri(format!("{NS}Department{d}.University{u}/Lecturer{i}"))
    }

    /// `GraduateStudent{i}` of a department.
    pub fn grad_student(u: usize, d: usize, i: usize) -> Term {
        Term::iri(format!("{NS}Department{d}.University{u}/GraduateStudent{i}"))
    }

    /// `UndergraduateStudent{i}` of a department.
    pub fn undergrad_student(u: usize, d: usize, i: usize) -> Term {
        Term::iri(format!("{NS}Department{d}.University{u}/UndergraduateStudent{i}"))
    }

    /// `Course{i}` of a department (LQ1 binds i = 10 in
    /// Department0.University0).
    pub fn course(u: usize, d: usize, i: usize) -> Term {
        Term::iri(format!("{NS}Department{d}.University{u}/Course{i}"))
    }

    /// `Publication{i}` of an author within a department.
    pub fn publication(u: usize, d: usize, author: &str, i: usize) -> Term {
        Term::iri(format!("{NS}Department{d}.University{u}/{author}/Publication{i}"))
    }
}

/// Generation parameters. Defaults approximate the shape of LUBM(n) with a
/// configurable size knob.
#[derive(Clone, Debug)]
pub struct LubmConfig {
    /// Number of universities (the paper used 10).
    pub universities: usize,
    /// RNG seed; equal configs generate identical data.
    pub seed: u64,
    /// Departments per university.
    pub departments: usize,
    /// Full / associate / assistant-equivalent professors per department.
    pub full_professors: usize,
    /// Associate professors per department (≥ 11 so AssociateProfessor10
    /// exists).
    pub associate_professors: usize,
    /// Lecturers per department.
    pub lecturers: usize,
    /// Courses per department (≥ 11 so Course10 exists).
    pub courses: usize,
    /// Graduate students per department.
    pub grad_students: usize,
    /// Undergraduate students per department.
    pub undergrad_students: usize,
}

impl Default for LubmConfig {
    fn default() -> Self {
        LubmConfig {
            universities: 1,
            seed: 0x5eed,
            departments: 15,
            full_professors: 8,
            associate_professors: 12,
            lecturers: 6,
            courses: 24,
            grad_students: 60,
            undergrad_students: 240,
        }
    }
}

impl LubmConfig {
    /// A configuration sized so that `universities` controls the triple
    /// count roughly linearly (~90k triples per university with defaults).
    pub fn with_universities(universities: usize) -> Self {
        LubmConfig { universities, ..Default::default() }
    }

    /// A small configuration for unit tests (~a few thousand triples).
    pub fn tiny() -> Self {
        LubmConfig {
            universities: 1,
            seed: 7,
            departments: 2,
            full_professors: 3,
            associate_professors: 11,
            lecturers: 2,
            courses: 12,
            grad_students: 8,
            undergrad_students: 20,
        }
    }
}

/// Generates the dataset as a vector of string-level triples.
pub fn generate(config: &LubmConfig) -> Vec<Triple> {
    let mut out = Vec::new();
    generate_into(config, &mut |t| out.push(t));
    out
}

/// Streaming generation; `emit` is called once per triple in a stable,
/// seed-deterministic order (prefixes of the stream are meaningful
/// workloads, as in the paper's progressively-larger-prefix experiments).
pub fn generate_into(config: &LubmConfig, emit: &mut dyn FnMut(Triple)) {
    assert!(config.associate_professors >= 11, "AssociateProfessor10 must exist");
    assert!(config.courses >= 11, "Course10 must exist");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let p = |name: &str| Vocab::predicate(name);
    let type_p = p("type");

    for u in 0..config.universities {
        let univ = Vocab::university(u);
        emit(Triple::new(univ.clone(), type_p.clone(), Vocab::class("University")));
        emit(Triple::new(univ.clone(), p("name"), Term::literal(format!("University {u}"))));

        for d in 0..config.departments {
            let dept = Vocab::department(u, d);
            emit(Triple::new(dept.clone(), type_p.clone(), Vocab::class("Department")));
            emit(Triple::new(dept.clone(), p("subOrganizationOf"), univ.clone()));

            let mut faculty: Vec<Term> = Vec::new();
            let emit_person =
                |person: &Term, class: &str, rng: &mut StdRng, emit: &mut dyn FnMut(Triple)| {
                    emit(Triple::new(person.clone(), type_p.clone(), Vocab::class(class)));
                    emit(Triple::new(person.clone(), p("worksFor"), dept.clone()));
                    emit(Triple::new(person.clone(), p("memberOf"), dept.clone()));
                    emit(Triple::new(
                        person.clone(),
                        p("name"),
                        Term::literal(format!("{class} person")),
                    ));
                    emit(Triple::new(
                        person.clone(),
                        p("emailAddress"),
                        Term::literal(format!("{}@univ{u}.edu", class.to_lowercase())),
                    ));
                    emit(Triple::new(
                        person.clone(),
                        p("telephone"),
                        Term::literal(format!("+1-555-{:04}", rng.gen_range(0..10_000))),
                    ));
                    // Degrees: every faculty member has all three, from
                    // uniformly random universities (so LQ5's
                    // degree-holder sets are non-trivial).
                    for degree in
                        ["undergraduateDegreeFrom", "mastersDegreeFrom", "doctoralDegreeFrom"]
                    {
                        let from = Vocab::university(rng.gen_range(0..config.universities.max(1)));
                        emit(Triple::new(person.clone(), p(degree), from));
                    }
                };

            for i in 0..config.full_professors {
                let prof = Vocab::full_professor(u, d, i);
                emit_person(&prof, "FullProfessor", &mut rng, emit);
                faculty.push(prof.clone());
                if i == 0 {
                    emit(Triple::new(prof, p("headOf"), dept.clone()));
                }
            }
            for i in 0..config.associate_professors {
                let prof = Vocab::associate_professor(u, d, i);
                emit_person(&prof, "AssociateProfessor", &mut rng, emit);
                faculty.push(prof);
            }
            for i in 0..config.lecturers {
                let lect = Vocab::lecturer(u, d, i);
                emit_person(&lect, "Lecturer", &mut rng, emit);
                faculty.push(lect);
            }

            // Courses: each taught by a deterministic-but-spread faculty
            // member; the i-th course goes to faculty (i * 7 + d) mod |F|.
            let mut courses: Vec<Term> = Vec::new();
            for i in 0..config.courses {
                let course = Vocab::course(u, d, i);
                emit(Triple::new(course.clone(), type_p.clone(), Vocab::class("Course")));
                emit(Triple::new(course.clone(), p("name"), Term::literal(format!("Course {i}"))));
                let teacher = &faculty[(i * 7 + d) % faculty.len()];
                emit(Triple::new(teacher.clone(), p("teacherOf"), course.clone()));
                courses.push(course);
            }

            for i in 0..config.grad_students {
                let s = Vocab::grad_student(u, d, i);
                emit(Triple::new(s.clone(), type_p.clone(), Vocab::class("GraduateStudent")));
                emit(Triple::new(s.clone(), p("memberOf"), dept.clone()));
                emit(Triple::new(
                    s.clone(),
                    p("undergraduateDegreeFrom"),
                    Vocab::university(rng.gen_range(0..config.universities.max(1))),
                ));
                let adv = &faculty[rng.gen_range(0..faculty.len())];
                emit(Triple::new(s.clone(), p("advisor"), adv.clone()));
                for _ in 0..rng.gen_range(1..=3) {
                    let c = &courses[rng.gen_range(0..courses.len())];
                    emit(Triple::new(s.clone(), p("takesCourse"), c.clone()));
                }
                if rng.gen_bool(0.25) {
                    let c = &courses[rng.gen_range(0..courses.len())];
                    emit(Triple::new(s.clone(), p("teachingAssistantOf"), c.clone()));
                }
                if rng.gen_bool(0.4) {
                    let pub_ = Vocab::publication(u, d, &format!("GraduateStudent{i}"), 0);
                    emit(Triple::new(pub_.clone(), type_p.clone(), Vocab::class("Publication")));
                    emit(Triple::new(pub_, p("publicationAuthor"), s.clone()));
                }
                if rng.gen_bool(0.3) {
                    emit(Triple::new(
                        s.clone(),
                        p("researchInterest"),
                        Term::literal(format!("Research{}", rng.gen_range(0..30))),
                    ));
                }
            }

            for i in 0..config.undergrad_students {
                let s = Vocab::undergrad_student(u, d, i);
                emit(Triple::new(s.clone(), type_p.clone(), Vocab::class("UndergraduateStudent")));
                emit(Triple::new(s.clone(), p("memberOf"), dept.clone()));
                for _ in 0..rng.gen_range(2..=4) {
                    let c = &courses[rng.gen_range(0..courses.len())];
                    emit(Triple::new(s.clone(), p("takesCourse"), c.clone()));
                }
                if rng.gen_bool(0.1) {
                    let adv = &faculty[rng.gen_range(0..faculty.len())];
                    emit(Triple::new(s.clone(), p("advisor"), adv.clone()));
                }
            }

            // Faculty publications and office metadata.
            for (fi, member) in faculty.iter().enumerate() {
                for j in 0..rng.gen_range(0..=2) {
                    let pub_ = Vocab::publication(u, d, &format!("Faculty{fi}"), j);
                    emit(Triple::new(pub_.clone(), type_p.clone(), Vocab::class("Publication")));
                    emit(Triple::new(pub_, p("publicationAuthor"), member.clone()));
                }
                emit(Triple::new(
                    member.clone(),
                    p("officeNumber"),
                    Term::literal(format!("{}", 100 + fi)),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = LubmConfig::tiny();
        assert_eq!(generate(&cfg), generate(&cfg));
        let mut other = cfg.clone();
        other.seed += 1;
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn has_exactly_18_predicates() {
        let triples = generate(&LubmConfig::tiny());
        let preds: BTreeSet<String> = triples.iter().map(|t| t.predicate.to_string()).collect();
        assert_eq!(preds.len(), 18, "paper: 18 different predicates; got {preds:?}");
    }

    #[test]
    fn named_query_entities_exist() {
        let triples = generate(&LubmConfig::tiny());
        let course10 = Vocab::course(0, 0, 10);
        let assoc10 = Vocab::associate_professor(0, 0, 10);
        let univ0 = Vocab::university(0);
        assert!(triples.iter().any(|t| t.object == course10 || t.subject == course10));
        assert!(triples.iter().any(|t| t.subject == assoc10));
        assert!(triples.iter().any(|t| t.object == univ0));
    }

    #[test]
    fn associate_professor_10_has_degrees_and_courses() {
        let triples = generate(&LubmConfig::tiny());
        let assoc10 = Vocab::associate_professor(0, 0, 10);
        let degree_preds = [
            Vocab::predicate("undergraduateDegreeFrom"),
            Vocab::predicate("mastersDegreeFrom"),
            Vocab::predicate("doctoralDegreeFrom"),
        ];
        for dp in &degree_preds {
            assert!(
                triples.iter().any(|t| t.subject == assoc10 && &t.predicate == dp),
                "missing degree {dp}"
            );
        }
    }

    #[test]
    fn all_courses_are_taught_and_taken() {
        let cfg = LubmConfig::tiny();
        let triples = generate(&cfg);
        let teacher_of = Vocab::predicate("teacherOf");
        let taught: BTreeSet<&Term> =
            triples.iter().filter(|t| t.predicate == teacher_of).map(|t| &t.object).collect();
        assert_eq!(taught.len(), cfg.departments * cfg.courses);
    }

    #[test]
    fn scale_is_roughly_linear_in_universities() {
        let one = generate(&LubmConfig { universities: 1, ..LubmConfig::tiny() }).len();
        let two = generate(&LubmConfig { universities: 2, ..LubmConfig::tiny() }).len();
        let ratio = two as f64 / one as f64;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn every_triple_is_valid_rdf() {
        let triples = generate(&LubmConfig::tiny());
        assert!(triples.iter().all(Triple::is_valid_rdf));
        assert!(triples.len() > 700, "got {}", triples.len());
    }
}
