//! # hex-datagen — deterministic synthetic RDF workloads
//!
//! The paper evaluates on two datasets: the real MIT Barton library catalog
//! and the synthetic LUBM academic benchmark (§5.1). Neither artifact is
//! available offline, so this crate generates faithful stand-ins (the
//! substitutions are documented in DESIGN.md §5):
//!
//! - [`lubm`] — academic data with exactly 18 predicates and the entity
//!   hierarchy the five LUBM queries traverse;
//! - [`barton`] — an irregular library catalog with 285 Zipf-skewed
//!   properties and the record populations the seven Barton queries touch;
//! - [`zipf`] — the skew sampler.
//!
//! All generators are pure functions of their configuration (seed
//! included) and emit triples in a stable order, so a *prefix* of the
//! stream is itself a meaningful smaller dataset — the paper's scaling
//! experiments sweep exactly such prefixes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barton;
pub mod lubm;
pub mod zipf;

pub use barton::{BartonConfig, PROPERTY_COUNT};
pub use lubm::{LubmConfig, PREDICATES};
pub use zipf::Zipf;
