//! Barton-like synthetic library catalog (paper §5.1.1).
//!
//! The paper's first dataset is the MIT Libraries Barton catalog: 61.2M
//! cleaned triples, **285 unique properties**, "quite irregular" structure,
//! "the vast majority of properties appear infrequently". The raw dump is
//! not redistributable here, so this generator synthesizes a catalog with
//! the same *shape*:
//!
//! - 285 distinct properties: a small core the benchmark queries touch
//!   (`Type`, `Language`, `Origin`, `Records`, `Encoding`, `Point`, …) plus
//!   a Zipf-skewed long tail;
//! - `Type: Text` as the dominant record type, a spread of minority types
//!   (including `Date` records carrying `Point`/`Encoding`, the subjects of
//!   BQ7);
//! - `Origin: DLC` records that `Records` other resources whose `Type`
//!   drives the BQ5/BQ6 inference step;
//! - irregularity: most properties are absent from most records.
//!
//! DESIGN.md §5 documents why this substitution preserves the queries'
//! cost profile.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdf_model::{Term, Triple};

/// Namespace prefix of all generated Barton-like resources.
pub const NS: &str = "http://barton.example.org/";

/// Total distinct properties, matching the paper's count.
pub const PROPERTY_COUNT: usize = 285;

/// The core properties the benchmark queries bind.
pub const CORE_PROPERTIES: [&str; 9] =
    ["Type", "Language", "Origin", "Records", "Encoding", "Point", "Title", "Creator", "Subject"];

/// IRI constructors for the generated catalog.
pub struct Vocab;

impl Vocab {
    /// A property IRI. Core properties by name; the tail is `tailProp{i}`.
    pub fn property(name: &str) -> Term {
        Term::iri(format!("{NS}prop/{name}"))
    }

    /// The `i`-th long-tail property, `i < PROPERTY_COUNT - CORE_PROPERTIES`.
    pub fn tail_property(i: usize) -> Term {
        Term::iri(format!("{NS}prop/tailProp{i}"))
    }

    /// A record (catalog item) IRI.
    pub fn record(i: usize) -> Term {
        Term::iri(format!("{NS}record/{i}"))
    }

    /// A type value IRI, e.g. `Text`.
    pub fn type_value(name: &str) -> Term {
        Term::iri(format!("{NS}type/{name}"))
    }
}

/// The record types and their relative weights. `Text` dominates, as in
/// the paper's browsing-session queries (BQ2 selects on `Type: Text`).
pub const TYPE_WEIGHTS: [(&str, u32); 10] = [
    ("Text", 40),
    ("Date", 12),
    ("Person", 10),
    ("Organization", 8),
    ("NotatedMusic", 7),
    ("Place", 6),
    ("Image", 6),
    ("Map", 4),
    ("Audio", 4),
    ("Event", 3),
];

/// Languages with `French` present at a realistic minority share (BQ4
/// selects `Language: French`).
pub const LANGUAGES: [(&str, u32); 6] = [
    ("English", 55),
    ("French", 12),
    ("German", 12),
    ("Spanish", 9),
    ("Italian", 7),
    ("Russian", 5),
];

/// Cataloguing origins; `DLC` (US Library of Congress) is the value BQ5
/// selects, present as a substantial minority.
pub const ORIGINS: [(&str, u32); 5] =
    [("DLC", 25), ("OCoLC", 35), ("MH", 18), ("CtY", 12), ("NjP", 10)];

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct BartonConfig {
    /// Number of catalog records. Triples ≈ 8–9 × records.
    pub records: usize,
    /// RNG seed.
    pub seed: u64,
    /// Zipf exponent for the long-tail property skew.
    pub tail_exponent: f64,
    /// Mean number of long-tail properties per record.
    pub tail_properties_per_record: usize,
}

impl Default for BartonConfig {
    fn default() -> Self {
        BartonConfig {
            records: 10_000,
            seed: 0xba5704,
            tail_exponent: 1.4,
            tail_properties_per_record: 4,
        }
    }
}

impl BartonConfig {
    /// Configuration producing roughly `n` triples.
    pub fn with_approx_triples(n: usize) -> Self {
        BartonConfig { records: n / 8, ..Default::default() }
    }

    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        BartonConfig { records: 800, seed: 11, ..Default::default() }
    }
}

fn weighted<'a, R: Rng>(rng: &mut R, table: &'a [(&'a str, u32)]) -> &'a str {
    let total: u32 = table.iter().map(|&(_, w)| w).sum();
    let mut x = rng.gen_range(0..total);
    for &(name, w) in table {
        if x < w {
            return name;
        }
        x -= w;
    }
    unreachable!("weights exhausted")
}

/// Generates the catalog as a vector of triples.
pub fn generate(config: &BartonConfig) -> Vec<Triple> {
    let mut out = Vec::new();
    generate_into(config, &mut |t| out.push(t));
    out
}

/// Streaming generation in a stable, seed-deterministic record order, so
/// stream prefixes are meaningful workloads.
pub fn generate_into(config: &BartonConfig, emit: &mut dyn FnMut(Triple)) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let tail_count = PROPERTY_COUNT - CORE_PROPERTIES.len();
    let zipf = Zipf::new(tail_count, config.tail_exponent);

    let p_type = Vocab::property("Type");
    let p_lang = Vocab::property("Language");
    let p_origin = Vocab::property("Origin");
    let p_records = Vocab::property("Records");
    let p_encoding = Vocab::property("Encoding");
    let p_point = Vocab::property("Point");
    let p_title = Vocab::property("Title");
    let p_creator = Vocab::property("Creator");
    let p_subject = Vocab::property("Subject");

    for i in 0..config.records {
        let rec = Vocab::record(i);
        let ty = weighted(&mut rng, &TYPE_WEIGHTS);
        emit(Triple::new(rec.clone(), p_type.clone(), Vocab::type_value(ty)));

        match ty {
            "Text" => {
                let lang = weighted(&mut rng, &LANGUAGES);
                emit(Triple::new(rec.clone(), p_lang.clone(), Term::literal(lang)));
                emit(Triple::new(
                    rec.clone(),
                    p_title.clone(),
                    Term::literal(format!("Title of record {i}")),
                ));
                if rng.gen_bool(0.7) {
                    emit(Triple::new(
                        rec.clone(),
                        p_creator.clone(),
                        Term::literal(format!(
                            "Creator {}",
                            rng.gen_range(0..config.records / 20 + 1)
                        )),
                    ));
                }
                if rng.gen_bool(0.5) {
                    emit(Triple::new(
                        rec.clone(),
                        p_subject.clone(),
                        Term::literal(format!("Subject {}", rng.gen_range(0..120))),
                    ));
                }
            }
            "Date" => {
                // BQ7: Point 'end' records are Dates with an Encoding.
                let point = if rng.gen_bool(0.5) { "end" } else { "start" };
                emit(Triple::new(rec.clone(), p_point.clone(), Term::literal(point)));
                let enc = if rng.gen_bool(0.8) { "marc8" } else { "utf8" };
                emit(Triple::new(rec.clone(), p_encoding.clone(), Term::literal(enc)));
            }
            _ => {
                if rng.gen_bool(0.3) {
                    emit(Triple::new(
                        rec.clone(),
                        p_title.clone(),
                        Term::literal(format!("Title of record {i}")),
                    ));
                }
            }
        }

        // Origin: a spread of cataloguing sources with DLC (the US Library
        // of Congress) as one value among several — so selecting
        // Origin:DLC genuinely filters. DLC records usually Record another
        // record, the BQ5 inference population; the recorded target's own
        // Type triple is what the inference step reads.
        if rng.gen_bool(0.45) {
            let origin = weighted(&mut rng, &ORIGINS);
            emit(Triple::new(rec.clone(), p_origin.clone(), Term::literal(origin)));
            if origin == "DLC" && rng.gen_bool(0.8) {
                let target = Vocab::record(rng.gen_range(0..config.records));
                emit(Triple::new(rec.clone(), p_records.clone(), target));
            }
        }

        // Long-tail properties: Zipf-ranked, so a handful are common and
        // most of the 285 appear only a few times. Values come from small
        // pools so BQ3's "appears more than once" filter selects some.
        let k = rng.gen_range(0..=config.tail_properties_per_record * 2);
        for _ in 0..k {
            let rank = zipf.sample(&mut rng);
            let prop = Vocab::tail_property(rank);
            let value = Term::literal(format!("v{}", rng.gen_range(0..40)));
            emit(Triple::new(rec.clone(), prop, value));
        }
    }
}

/// The 28 "interesting" properties of the Abadi et al. study: the core
/// properties plus the head of the long tail. Methods with the `_28`
/// suffix restrict non-property-bound queries to this set, as the paper's
/// comparison does.
pub fn interesting_properties() -> Vec<Term> {
    let mut props: Vec<Term> = CORE_PROPERTIES.iter().map(|n| Vocab::property(n)).collect();
    let tail_needed = 28 - props.len();
    for i in 0..tail_needed {
        props.push(Vocab::tail_property(i));
    }
    props
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = BartonConfig::tiny();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn property_universe_is_bounded_by_285() {
        let triples = generate(&BartonConfig { records: 20_000, ..BartonConfig::tiny() });
        let props: BTreeSet<String> = triples.iter().map(|t| t.predicate.to_string()).collect();
        assert!(props.len() <= PROPERTY_COUNT);
        // With enough records the universe should be nearly saturated.
        assert!(props.len() > 200, "only {} properties generated", props.len());
    }

    #[test]
    fn property_frequencies_are_skewed() {
        let triples = generate(&BartonConfig::tiny());
        let mut freq: BTreeMap<String, usize> = BTreeMap::new();
        for t in &triples {
            *freq.entry(t.predicate.to_string()).or_default() += 1;
        }
        let mut counts: Vec<usize> = freq.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Head property at least 20× the median — "the vast majority of
        // properties appear infrequently".
        let median = counts[counts.len() / 2];
        assert!(counts[0] >= 20 * median.max(1), "head {} median {median}", counts[0]);
    }

    #[test]
    fn text_is_the_dominant_type() {
        let triples = generate(&BartonConfig::tiny());
        let p_type = Vocab::property("Type");
        let mut by_type: BTreeMap<String, usize> = BTreeMap::new();
        for t in triples.iter().filter(|t| t.predicate == p_type) {
            *by_type.entry(t.object.to_string()).or_default() += 1;
        }
        let text = by_type.get(&Vocab::type_value("Text").to_string()).copied().unwrap_or(0);
        assert!(by_type.values().all(|&c| c <= text));
        assert!(by_type.len() >= 8, "expected a spread of types");
    }

    #[test]
    fn bq_query_populations_exist() {
        let triples = generate(&BartonConfig::tiny());
        let has = |p: &Term, o: Option<&Term>| {
            triples.iter().any(|t| &t.predicate == p && o.is_none_or(|o| &t.object == o))
        };
        // BQ4: French texts; BQ5: DLC records with Records; BQ7: Point end.
        assert!(has(&Vocab::property("Language"), Some(&Term::literal("French"))));
        assert!(has(&Vocab::property("Origin"), Some(&Term::literal("DLC"))));
        assert!(has(&Vocab::property("Records"), None));
        assert!(has(&Vocab::property("Point"), Some(&Term::literal("end"))));
        assert!(has(&Vocab::property("Encoding"), None));
    }

    #[test]
    fn dlc_records_point_at_typed_targets() {
        let triples = generate(&BartonConfig::tiny());
        let p_records = Vocab::property("Records");
        let p_type = Vocab::property("Type");
        let typed: BTreeSet<&Term> =
            triples.iter().filter(|t| t.predicate == p_type).map(|t| &t.subject).collect();
        let targets: Vec<&Term> =
            triples.iter().filter(|t| t.predicate == p_records).map(|t| &t.object).collect();
        assert!(!targets.is_empty());
        assert!(targets.iter().all(|t| typed.contains(t)), "Records targets must have a Type");
    }

    #[test]
    fn interesting_properties_are_28() {
        let props = interesting_properties();
        assert_eq!(props.len(), 28);
        let set: BTreeSet<String> = props.iter().map(Term::to_string).collect();
        assert_eq!(set.len(), 28, "no duplicates");
    }

    #[test]
    fn triple_volume_tracks_records() {
        let small = generate(&BartonConfig { records: 500, ..BartonConfig::tiny() }).len();
        let large = generate(&BartonConfig { records: 1000, ..BartonConfig::tiny() }).len();
        let ratio = large as f64 / small as f64;
        assert!((1.6..2.4).contains(&ratio), "ratio {ratio}");
    }
}
