//! Integer identifiers for dictionary-encoded terms.

use std::fmt;

/// A dense integer key identifying one RDF term in a [`crate::Dictionary`].
///
/// `u32` is deliberate: the paper's evaluation tops out at 61M triples and
/// far fewer distinct terms, and index memory is itself an experiment
/// (Figure 15), so halving key width vs `u64` matters. Ids are allocated
/// contiguously from 0, so they double as indices into side tables.
///
/// `repr(transparent)` guarantees an `Id` is layout-identical to its
/// `u32`, so a column of little-endian `u32`s on disk (the `hexsnap`
/// format) can be reinterpreted as `&[Id]` by the mmap-backed reader.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(transparent)]
pub struct Id(pub u32);

impl Id {
    /// The id as a `usize`, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u32> for Id {
    fn from(v: u32) -> Self {
        Id(v)
    }
}

/// A dictionary-encoded triple: three [`Id`] keys in (s, p, o) order.
///
/// This is the unit every store in the workspace ingests; the paper's six
/// indices, the COVP property tables and the triples table all hold these
/// keys rather than strings.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IdTriple {
    /// Subject key.
    pub s: Id,
    /// Predicate (property) key.
    pub p: Id,
    /// Object key.
    pub o: Id,
}

impl IdTriple {
    /// Creates an encoded triple.
    #[inline]
    pub fn new(s: Id, p: Id, o: Id) -> Self {
        IdTriple { s, p, o }
    }

    /// The components as a tuple.
    #[inline]
    pub fn as_tuple(self) -> (Id, Id, Id) {
        (self.s, self.p, self.o)
    }
}

impl fmt::Debug for IdTriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.s, self.p, self.o)
    }
}

impl From<(Id, Id, Id)> for IdTriple {
    fn from((s, p, o): (Id, Id, Id)) -> Self {
        IdTriple { s, p, o }
    }
}

impl From<(u32, u32, u32)> for IdTriple {
    fn from((s, p, o): (u32, u32, u32)) -> Self {
        IdTriple { s: Id(s), p: Id(p), o: Id(o) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_is_four_bytes() {
        assert_eq!(std::mem::size_of::<Id>(), 4);
        assert_eq!(std::mem::size_of::<IdTriple>(), 12);
    }

    #[test]
    fn ordering_is_spo() {
        let a = IdTriple::from((0, 5, 9));
        let b = IdTriple::from((0, 6, 0));
        let c = IdTriple::from((1, 0, 0));
        assert!(a < b && b < c);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Id(7).to_string(), "#7");
        assert_eq!(format!("{:?}", IdTriple::from((1, 2, 3))), "(#1, #2, #3)");
    }

    #[test]
    fn conversions() {
        assert_eq!(Id::from(3u32), Id(3));
        assert_eq!(Id(3).index(), 3usize);
        let t: IdTriple = (Id(1), Id(2), Id(3)).into();
        assert_eq!(t.as_tuple(), (Id(1), Id(2), Id(3)));
    }
}
