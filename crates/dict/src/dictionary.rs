//! The bidirectional term ⇄ id mapping table, backed by a string arena.
//!
//! Terms are interned into one contiguous UTF-8 arena per dictionary;
//! each term is a `(kind, offset, length)` view over that arena rather
//! than an owned `Term`. The in-memory buffers mirror the hexsnap `DICT`
//! section byte-for-byte (kind column, cumulative piece offsets, arena),
//! so saving is a straight copy of three buffers and loading is an
//! offset-table validation plus one hash pass — no per-term `Term`
//! construction and no per-term allocation.

use crate::id::{Id, IdTriple};
use rdf_model::{Term, Triple};
use std::ops::Range;
use std::sync::Arc;

/// Term kind bytes, exactly as the hexsnap `DICT` section stores them.
pub(crate) const KIND_IRI: u8 = 0;
pub(crate) const KIND_BLANK: u8 = 1;
pub(crate) const KIND_LITERAL: u8 = 2;
pub(crate) const KIND_LANG: u8 = 3;
pub(crate) const KIND_TYPED: u8 = 4;

/// Number of string pieces a term of `kind` stores in the arena: one for
/// IRIs, blanks and plain literals; lexical form plus tag/datatype for
/// language-tagged and typed literals.
pub(crate) fn pieces_of(kind: u8) -> usize {
    if kind >= KIND_LANG {
        2
    } else {
        1
    }
}

/// Read-only byte storage an arena dictionary can borrow instead of own —
/// in practice a memory-mapped snapshot held open by `hex-disk`, so the
/// string arena stays on disk and pages in on demand.
pub type SharedBytes = Arc<dyn AsRef<[u8]> + Send + Sync>;

/// The arena's backing bytes: owned by this dictionary, or a window into
/// shared (typically memory-mapped) storage.
#[derive(Clone)]
pub(crate) enum Arena {
    Owned(Vec<u8>),
    Shared { bytes: SharedBytes, range: Range<usize> },
}

impl Default for Arena {
    fn default() -> Self {
        Arena::Owned(Vec::new())
    }
}

impl Arena {
    /// The arena bytes. A shared provider whose bytes shrank after
    /// construction degrades to an empty slice — lookups then miss and
    /// decodes return `None`, but nothing panics.
    pub(crate) fn bytes(&self) -> &[u8] {
        match self {
            Arena::Owned(v) => v,
            Arena::Shared { bytes, range } => (**bytes).as_ref().get(range.clone()).unwrap_or(&[]),
        }
    }

    /// Converts to owned storage (copying shared bytes once) so the
    /// arena can grow.
    fn make_owned(&mut self) -> &mut Vec<u8> {
        if let Arena::Shared { .. } = self {
            *self = Arena::Owned(self.bytes().to_vec());
        }
        match self {
            Arena::Owned(v) => v,
            Arena::Shared { .. } => unreachable!("just converted to owned"),
        }
    }
}

/// An empty open-addressing slot.
pub(crate) const EMPTY_SLOT: u32 = u32::MAX;

/// Open-addressing hash table from term bytes to term ids.
///
/// Slots hold term ids; keys live in the arena, so the table itself is
/// one flat `u32` array — no per-entry allocation, and lookups compare
/// borrowed bytes directly. Capacity is a power of two; load factor is
/// kept below 7/8.
#[derive(Clone, Default)]
pub(crate) struct TermIndex {
    pub(crate) slots: Vec<u32>,
}

/// Slot count (a power of two) comfortably holding `n` entries.
pub(crate) fn slots_for(n: usize) -> usize {
    (n + n / 4 + 8).next_power_of_two()
}

impl TermIndex {
    pub(crate) fn with_capacity(n: usize) -> Self {
        TermIndex { slots: vec![EMPTY_SLOT; slots_for(n)] }
    }

    /// Probes for a term with the given hash: `Ok(id)` when `eq` accepts
    /// an occupied slot, `Err(slot)` with the insertion position when the
    /// probe chain ends at an empty slot. The table must be non-empty.
    pub(crate) fn probe(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Result<u32, usize> {
        debug_assert!(self.slots.len().is_power_of_two());
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            match self.slots[i] {
                EMPTY_SLOT => return Err(i),
                id if eq(id) => return Ok(id),
                _ => i = (i + 1) & mask,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Hashing: an FxHash-style multiply-rotate over the term's kind byte and
// piece bytes. Collisions are resolved by byte comparison, so the hash
// only affects probe-chain length, never ids.
// ---------------------------------------------------------------------

const HASH_SEED: u64 = 0x517c_c1b7_2722_0a95;

#[inline]
fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(HASH_SEED)
}

#[inline]
fn hash_piece(mut h: u64, bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        h = mix(h, u64::from_le_bytes(c.try_into().expect("chunk of 8")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        h = mix(h, u64::from_le_bytes(buf));
    }
    mix(h, bytes.len() as u64)
}

/// Hashes a term's `(kind, pieces)` decomposition.
pub(crate) fn hash_parts(kind: u8, a: &[u8], b: Option<&[u8]>) -> u64 {
    let mut h = mix(HASH_SEED, u64::from(kind));
    h = hash_piece(h, a);
    if let Some(b) = b {
        h = hash_piece(h, b);
    }
    h
}

/// Decomposes a term into its `DICT`-section kind byte and string
/// pieces. The inverse of [`Inner::materialize`]; no allocation.
pub(crate) fn parts(term: &Term) -> (u8, &str, Option<&str>) {
    match term {
        Term::Iri(iri) => (KIND_IRI, iri.as_str(), None),
        Term::Blank(b) => (KIND_BLANK, b.as_str(), None),
        Term::Literal(l) => match l.language() {
            Some(tag) => (KIND_LANG, l.lexical(), Some(tag)),
            None if l.datatype() != rdf_model::XSD_STRING => {
                (KIND_TYPED, l.lexical(), Some(l.datatype()))
            }
            None => (KIND_LITERAL, l.lexical(), None),
        },
    }
}

// ---------------------------------------------------------------------
// The shared interior. `Dictionary` wraps it in an `Arc` so clones are
// O(1) and copy-on-write: freezing or publishing a dataset shares the
// table, and only a later mutation of a shared clone re-owns it.
// ---------------------------------------------------------------------

#[derive(Clone, Default)]
pub(crate) struct Inner {
    /// One kind byte per term (`Id(i)` ↦ `kinds[i]`).
    pub(crate) kinds: Vec<u8>,
    /// Piece index of each term's first piece.
    pub(crate) first_piece: Vec<u32>,
    /// Cumulative end offsets of the string pieces in the arena.
    pub(crate) ends: Vec<u32>,
    /// The contiguous UTF-8 string arena all pieces point into.
    pub(crate) arena: Arena,
    /// Byte-keyed reverse index: term bytes → id.
    pub(crate) index: TermIndex,
}

impl Inner {
    /// Byte bounds of piece `p` in the arena.
    #[inline]
    fn piece_bounds(&self, p: usize) -> (usize, usize) {
        let start = if p == 0 { 0 } else { self.ends[p - 1] as usize };
        (start, self.ends[p] as usize)
    }

    /// Byte slices of term `i`'s pieces. Clamped: shared bytes that
    /// mutated or shrank after validation yield empty slices, never a
    /// panic.
    pub(crate) fn term_bytes(&self, i: usize) -> (&[u8], Option<&[u8]>) {
        let bytes = self.arena.bytes();
        let p = self.first_piece[i] as usize;
        let (a0, a1) = self.piece_bounds(p);
        let a = bytes.get(a0..a1).unwrap_or(&[]);
        let b = if pieces_of(self.kinds[i]) == 2 {
            let (b0, b1) = self.piece_bounds(p + 1);
            Some(bytes.get(b0..b1).unwrap_or(&[]))
        } else {
            None
        };
        (a, b)
    }

    /// Whether term `id` equals the `(kind, pieces)` decomposition.
    #[inline]
    pub(crate) fn term_matches(&self, id: u32, kind: u8, a: &[u8], b: Option<&[u8]>) -> bool {
        let i = id as usize;
        if self.kinds[i] != kind {
            return false;
        }
        let (ca, cb) = self.term_bytes(i);
        ca == a && cb == b
    }

    fn hash_of(&self, id: u32) -> u64 {
        let (a, b) = self.term_bytes(id as usize);
        hash_parts(self.kinds[id as usize], a, b)
    }

    /// Looks up a term by its decomposition without mutating anything.
    pub(crate) fn lookup(&self, hash: u64, kind: u8, a: &[u8], b: Option<&[u8]>) -> Option<u32> {
        if self.index.slots.is_empty() {
            return None;
        }
        self.index.probe(hash, |id| self.term_matches(id, kind, a, b)).ok()
    }

    /// Rebuilds the index when one more entry would push the load factor
    /// past 7/8. Hashes are recomputed from the arena — the table stores
    /// only ids, so growth costs no extra memory per entry.
    fn maybe_grow(&mut self, extra: usize) {
        let n = self.kinds.len() + extra;
        if !self.index.slots.is_empty() && self.index.slots.len() * 7 >= n * 8 {
            return;
        }
        let mut slots = vec![EMPTY_SLOT; slots_for(n)];
        let mask = slots.len() - 1;
        for id in 0..self.kinds.len() as u32 {
            let mut i = (self.hash_of(id) as usize) & mask;
            while slots[i] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            slots[i] = id;
        }
        self.index.slots = slots;
    }

    /// Appends a term known to be absent, returning its new id.
    pub(crate) fn push_term(&mut self, kind: u8, a: &[u8], b: Option<&[u8]>, hash: u64) -> Id {
        let id =
            u32::try_from(self.kinds.len()).expect("dictionary overflow: more than 2^32 terms");
        self.maybe_grow(1);
        let piece0 =
            u32::try_from(self.ends.len()).expect("dictionary overflow: more than 2^32 pieces");
        let arena = self.arena.make_owned();
        arena.extend_from_slice(a);
        self.ends.push(u32::try_from(arena.len()).expect("dictionary string arena exceeds 4 GiB"));
        if let Some(b) = b {
            arena.extend_from_slice(b);
            self.ends
                .push(u32::try_from(arena.len()).expect("dictionary string arena exceeds 4 GiB"));
        }
        self.kinds.push(kind);
        self.first_piece.push(piece0);
        let slot = self.index.probe(hash, |_| false).expect_err("pushed term must be absent");
        self.index.slots[slot] = id;
        Id(id)
    }

    /// Materializes term `i` as an owned [`Term`]. Returns `None` (never
    /// panics) if shared arena bytes have become undecodable since
    /// validation.
    fn materialize(&self, i: usize) -> Option<Term> {
        let kind = *self.kinds.get(i)?;
        let (a, b) = self.term_bytes(i);
        let a = std::str::from_utf8(a).ok()?;
        Some(match kind {
            KIND_IRI => Term::iri(a),
            KIND_BLANK => Term::blank(a),
            KIND_LITERAL => Term::literal(a),
            KIND_LANG => Term::lang_literal(a, std::str::from_utf8(b?).ok()?),
            KIND_TYPED => Term::typed_literal(a, std::str::from_utf8(b?).ok()?),
            _ => return None,
        })
    }
}

/// Why an arena image was rejected by [`Dictionary::try_from_arena`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArenaError {
    /// A kind byte outside `0..=4`.
    UnknownKind(u8),
    /// The kind column requires a different piece count than given.
    PieceCount {
        /// Number of piece offsets supplied.
        declared: usize,
        /// Number the kind column requires.
        required: usize,
    },
    /// Piece offsets decrease, or fail to cover the arena exactly.
    OffsetsNotMonotone,
    /// The arena is not valid UTF-8.
    NotUtf8,
    /// A piece offset splits a multi-byte UTF-8 sequence.
    SplitsChar,
    /// Two ids decode to the same term.
    Duplicate,
    /// A typed literal carries the implicit `xsd:string` datatype, which
    /// canonically encodes as a plain literal (kind 2).
    NonCanonicalTyped,
    /// The shared byte range lies outside the provider's bytes.
    OutOfBounds,
}

impl std::fmt::Display for ArenaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArenaError::UnknownKind(k) => write!(f, "unknown term kind {k}"),
            ArenaError::PieceCount { declared, required } => {
                write!(f, "dictionary declares {declared} string pieces, kinds require {required}")
            }
            ArenaError::OffsetsNotMonotone => {
                write!(f, "dictionary piece offsets are not a monotone cover of the arena")
            }
            ArenaError::NotUtf8 => write!(f, "dictionary string arena is not UTF-8"),
            ArenaError::SplitsChar => write!(f, "piece offset splits a UTF-8 sequence"),
            ArenaError::Duplicate => write!(f, "duplicate term in dictionary section"),
            ArenaError::NonCanonicalTyped => {
                write!(f, "typed literal carries the implicit xsd:string datatype")
            }
            ArenaError::OutOfBounds => {
                write!(f, "arena range lies outside the shared byte provider")
            }
        }
    }
}

impl std::error::Error for ArenaError {}

/// Dictionary encoding of RDF terms.
///
/// Maps each distinct [`Term`] to a dense [`Id`] (allocated in first-seen
/// order starting from 0) and back. All stores in the workspace share one
/// dictionary per dataset, exactly as the paper's single "mapping table"
/// (§4.1) serves all six indices.
///
/// Terms are interned into one contiguous UTF-8 arena; encoding a term
/// that is already present allocates nothing (the lookup hashes and
/// compares borrowed bytes). The in-memory layout mirrors the hexsnap
/// `DICT` section, so snapshot save/load move whole buffers instead of
/// constructing terms. Cloning is O(1): the interior is shared
/// copy-on-write, and only the first mutation of a shared clone re-owns
/// it.
#[derive(Default, Clone)]
pub struct Dictionary {
    pub(crate) inner: Arc<Inner>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Creates an empty dictionary with capacity for `n` distinct terms.
    pub fn with_capacity(n: usize) -> Self {
        Dictionary {
            inner: Arc::new(Inner {
                kinds: Vec::with_capacity(n),
                first_piece: Vec::with_capacity(n),
                ends: Vec::with_capacity(n + n / 8),
                arena: Arena::Owned(Vec::new()),
                index: TermIndex::with_capacity(n),
            }),
        }
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.inner.kinds.len()
    }

    /// True if no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.inner.kinds.is_empty()
    }

    /// Interns a term, returning its id. Idempotent: the same term always
    /// yields the same id. The hit path allocates nothing.
    pub fn encode(&mut self, term: &Term) -> Id {
        let (kind, a, b) = parts(term);
        let (a, b) = (a.as_bytes(), b.map(str::as_bytes));
        let hash = hash_parts(kind, a, b);
        if let Some(id) = self.inner.lookup(hash, kind, a, b) {
            return Id(id);
        }
        Arc::make_mut(&mut self.inner).push_term(kind, a, b, hash)
    }

    /// Looks up the id of a term without interning it.
    pub fn id_of(&self, term: &Term) -> Option<Id> {
        let (kind, a, b) = parts(term);
        let (a, b) = (a.as_bytes(), b.map(str::as_bytes));
        self.inner.lookup(hash_parts(kind, a, b), kind, a, b).map(Id)
    }

    /// Decodes an id back to its term, materializing it from the arena.
    pub fn decode(&self, id: Id) -> Option<Term> {
        self.inner.materialize(id.index())
    }

    /// Encodes a triple, interning all three terms.
    pub fn encode_triple(&mut self, t: &Triple) -> IdTriple {
        IdTriple {
            s: self.encode(&t.subject),
            p: self.encode(&t.predicate),
            o: self.encode(&t.object),
        }
    }

    /// Looks up an already-interned triple. Returns `None` if any component
    /// has never been seen (in which case no store can contain the triple).
    pub fn triple_ids(&self, t: &Triple) -> Option<IdTriple> {
        Some(IdTriple {
            s: self.id_of(&t.subject)?,
            p: self.id_of(&t.predicate)?,
            o: self.id_of(&t.object)?,
        })
    }

    /// Decodes an encoded triple back to terms.
    pub fn decode_triple(&self, t: IdTriple) -> Option<Triple> {
        Some(Triple::new(self.decode(t.s)?, self.decode(t.p)?, self.decode(t.o)?))
    }

    /// Iterates `(id, term)` pairs in id order, materializing each term
    /// from the arena.
    pub fn iter(&self) -> impl Iterator<Item = (Id, Term)> + '_ {
        (0..self.len() as u32).filter_map(move |i| Some((Id(i), self.decode(Id(i))?)))
    }

    /// The interned terms in id order, materialized: `terms()[i]` is the
    /// term of `Id(i)`.
    pub fn terms(&self) -> Vec<Term> {
        self.iter().map(|(_, t)| t).collect()
    }

    /// The per-term kind column, exactly as the hexsnap `DICT` section
    /// stores it: 0 IRI, 1 blank, 2 plain literal, 3 language-tagged
    /// literal, 4 typed literal. Kinds 3–4 own two consecutive string
    /// pieces (lexical form, then tag/datatype); the rest own one.
    pub fn term_kinds(&self) -> &[u8] {
        &self.inner.kinds
    }

    /// Cumulative end offsets of the string pieces in the arena, in the
    /// `DICT` section's order.
    pub fn piece_ends(&self) -> &[u32] {
        &self.inner.ends
    }

    /// The contiguous UTF-8 string arena all pieces point into.
    pub fn arena_bytes(&self) -> &[u8] {
        self.inner.arena.bytes()
    }

    /// True when the arena is a window into shared (typically
    /// memory-mapped) storage rather than owned heap bytes.
    pub fn arena_is_shared(&self) -> bool {
        matches!(self.inner.arena, Arena::Shared { .. })
    }

    /// Rebuilds a dictionary from the three `DICT`-section buffers — the
    /// snapshot fast path. Validates the offset table (kinds, piece
    /// counts, monotone cover, UTF-8, char boundaries, distinctness) and
    /// builds the reverse index in one hash pass; no `Term` is
    /// constructed.
    pub fn try_from_arena(
        kinds: Vec<u8>,
        ends: Vec<u32>,
        arena: Vec<u8>,
    ) -> Result<Self, ArenaError> {
        Self::build_from_arena(kinds, ends, Arena::Owned(arena))
    }

    /// Like [`Dictionary::try_from_arena`], but the arena stays a window
    /// of `offset..offset + len` into shared storage (an open memory
    /// map), so the string bytes are never copied onto the heap.
    ///
    /// Validation happens against the bytes as they are now; the
    /// provider is trusted not to mutate them afterwards. If it does
    /// anyway, lookups may miss and decodes may return `None`, but
    /// nothing panics.
    pub fn try_from_shared_arena(
        kinds: Vec<u8>,
        ends: Vec<u32>,
        bytes: SharedBytes,
        offset: usize,
        len: usize,
    ) -> Result<Self, ArenaError> {
        let total = (*bytes).as_ref().len();
        if offset.checked_add(len).is_none_or(|end| end > total) {
            return Err(ArenaError::OutOfBounds);
        }
        Self::build_from_arena(kinds, ends, Arena::Shared { bytes, range: offset..offset + len })
    }

    fn build_from_arena(kinds: Vec<u8>, ends: Vec<u32>, arena: Arena) -> Result<Self, ArenaError> {
        let mut required = 0usize;
        for &k in &kinds {
            if k > KIND_TYPED {
                return Err(ArenaError::UnknownKind(k));
            }
            required += pieces_of(k);
        }
        if required != ends.len() {
            return Err(ArenaError::PieceCount { declared: ends.len(), required });
        }
        let n_bytes = arena.bytes().len();
        let mut prev = 0u32;
        for &e in &ends {
            if e < prev {
                return Err(ArenaError::OffsetsNotMonotone);
            }
            prev = e;
        }
        if prev as usize != n_bytes {
            return Err(ArenaError::OffsetsNotMonotone);
        }
        let text = std::str::from_utf8(arena.bytes()).map_err(|_| ArenaError::NotUtf8)?;
        if ends.iter().any(|&e| !text.is_char_boundary(e as usize)) {
            return Err(ArenaError::SplitsChar);
        }
        let mut first_piece = Vec::with_capacity(kinds.len());
        let mut p = 0u32;
        for &k in &kinds {
            first_piece.push(p);
            p += pieces_of(k) as u32;
        }
        let mut inner = Inner { kinds, first_piece, ends, arena, index: TermIndex::default() };
        // The single hash pass: build the reverse index over borrowed
        // bytes. Distinctness falls out of the build — a probe that finds
        // an equal term is a corrupt image, not a second id.
        let mut index = TermIndex::with_capacity(inner.kinds.len());
        for id in 0..inner.kinds.len() as u32 {
            let i = id as usize;
            let kind = inner.kinds[i];
            let (a, b) = inner.term_bytes(i);
            if kind == KIND_TYPED && b == Some(rdf_model::XSD_STRING.as_bytes()) {
                return Err(ArenaError::NonCanonicalTyped);
            }
            match index.probe(hash_parts(kind, a, b), |c| inner.term_matches(c, kind, a, b)) {
                Ok(_) => return Err(ArenaError::Duplicate),
                Err(slot) => index.slots[slot] = id,
            }
        }
        inner.index = index;
        Ok(Dictionary { inner: Arc::new(inner) })
    }

    /// Rebuilds a dictionary from terms already in id order (index `i`
    /// becomes `Id(i)`) — the snapshot-restore constructor.
    ///
    /// # Panics
    ///
    /// If the input contains duplicate terms (a corrupt snapshot — use
    /// [`Self::try_from_id_ordered_terms`] for untrusted input).
    pub fn from_id_ordered_terms(terms: Vec<Term>) -> Self {
        Self::try_from_id_ordered_terms(terms).expect("duplicate term in id-ordered input")
    }

    /// Like [`Self::from_id_ordered_terms`], but returns `None` when the
    /// input contains duplicate terms instead of panicking — snapshot
    /// readers turn that into a corruption error.
    pub fn try_from_id_ordered_terms(terms: Vec<Term>) -> Option<Self> {
        let mut d = Dictionary::with_capacity(terms.len());
        for (i, term) in terms.iter().enumerate() {
            if d.encode(term).index() != i {
                return None;
            }
        }
        Some(d)
    }

    /// Exact heap footprint of the dictionary in bytes: the kind column,
    /// the two offset tables, the reverse index's slot array, and the
    /// string arena — each a single flat buffer, counted at capacity.
    /// String bytes appear exactly once (the reverse index stores only
    /// ids, keyed by the same arena bytes); a shared (mapped) arena
    /// contributes nothing, since its bytes are file-backed rather than
    /// heap-allocated.
    pub fn heap_bytes(&self) -> usize {
        let inner = &*self.inner;
        let arena = match &inner.arena {
            Arena::Owned(v) => v.capacity(),
            Arena::Shared { .. } => 0,
        };
        std::mem::size_of::<Inner>()
            + inner.kinds.capacity()
            + inner.first_piece.capacity() * 4
            + inner.ends.capacity() * 4
            + inner.index.slots.capacity() * 4
            + arena
    }
}

impl std::fmt::Debug for Dictionary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dictionary")
            .field("terms", &self.len())
            .field("arena_bytes", &self.arena_bytes().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    #[test]
    fn encode_is_idempotent_and_dense() {
        let mut d = Dictionary::new();
        let a = d.encode(&iri("a"));
        let b = d.encode(&iri("b"));
        let a2 = d.encode(&iri("a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a, Id(0));
        assert_eq!(b, Id(1));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_inverts_encode() {
        let mut d = Dictionary::new();
        let terms = [
            iri("a"),
            Term::literal("lit"),
            Term::blank("b0"),
            Term::lang_literal("x", "en"),
            Term::typed_literal("42", "http://www.w3.org/2001/XMLSchema#integer"),
        ];
        let ids: Vec<Id> = terms.iter().map(|t| d.encode(t)).collect();
        for (id, term) in ids.iter().zip(&terms) {
            assert_eq!(d.decode(*id).as_ref(), Some(term));
        }
    }

    #[test]
    fn distinct_literal_forms_get_distinct_ids() {
        let mut d = Dictionary::new();
        // Same lexical form, different term kinds/tags must not collide.
        let plain = d.encode(&Term::literal("MIT"));
        let lang = d.encode(&Term::lang_literal("MIT", "en"));
        let iri = d.encode(&Term::iri("MIT"));
        assert_ne!(plain, lang);
        assert_ne!(plain, iri);
        assert_ne!(lang, iri);
    }

    #[test]
    fn adjacent_pieces_do_not_alias() {
        // "ab" + lang "c" must differ from "a" + lang "bc" even though the
        // two lay out the same arena bytes.
        let mut d = Dictionary::new();
        let x = d.encode(&Term::lang_literal("ab", "c"));
        let y = d.encode(&Term::lang_literal("a", "bc"));
        assert_ne!(x, y);
        assert_eq!(d.decode(x), Some(Term::lang_literal("ab", "c")));
        assert_eq!(d.decode(y), Some(Term::lang_literal("a", "bc")));
    }

    #[test]
    fn id_of_does_not_intern() {
        let mut d = Dictionary::new();
        assert_eq!(d.id_of(&iri("a")), None);
        assert_eq!(d.len(), 0);
        d.encode(&iri("a"));
        assert_eq!(d.id_of(&iri("a")), Some(Id(0)));
    }

    #[test]
    fn triple_roundtrip() {
        let mut d = Dictionary::new();
        let t = Triple::new(iri("ID1"), iri("advisor"), iri("ID2"));
        let enc = d.encode_triple(&t);
        assert_eq!(d.decode_triple(enc), Some(t.clone()));
        assert_eq!(d.triple_ids(&t), Some(enc));
    }

    #[test]
    fn triple_ids_of_unknown_term_is_none() {
        let mut d = Dictionary::new();
        d.encode_triple(&Triple::new(iri("a"), iri("p"), iri("b")));
        let unknown = Triple::new(iri("a"), iri("p"), iri("zzz"));
        assert_eq!(d.triple_ids(&unknown), None);
    }

    #[test]
    fn decode_out_of_range_is_none() {
        let d = Dictionary::new();
        assert_eq!(d.decode(Id(0)), None);
        assert_eq!(d.decode_triple(IdTriple::from((0, 1, 2))), None);
    }

    #[test]
    fn iter_yields_id_order() {
        let mut d = Dictionary::new();
        d.encode(&iri("a"));
        d.encode(&iri("b"));
        let pairs: Vec<(Id, String)> = d.iter().map(|(i, t)| (i, t.to_string())).collect();
        assert_eq!(pairs[0].0, Id(0));
        assert_eq!(pairs[1].0, Id(1));
        assert!(pairs[0].1.contains("/a"));
    }

    #[test]
    fn from_id_ordered_terms_matches_incremental_encode() {
        let mut d = Dictionary::new();
        let terms =
            [iri("a"), Term::literal("lit"), Term::blank("b0"), Term::lang_literal("x", "en")];
        for t in &terms {
            d.encode(t);
        }
        let rebuilt = Dictionary::from_id_ordered_terms(d.terms());
        assert_eq!(rebuilt.len(), d.len());
        for (id, term) in d.iter() {
            assert_eq!(rebuilt.decode(id), Some(term.clone()));
            assert_eq!(rebuilt.id_of(&term), Some(id));
        }
        // Duplicate input is rejected by the fallible constructor.
        assert!(Dictionary::try_from_id_ordered_terms(vec![iri("a"), iri("a")]).is_none());
    }

    #[test]
    fn heap_bytes_grows_with_content() {
        let mut d = Dictionary::new();
        let empty = d.heap_bytes();
        for i in 0..100 {
            d.encode(&iri(&format!("term{i}")));
        }
        assert!(d.heap_bytes() > empty);
    }

    #[test]
    fn shared_subject_and_object_namespace() {
        // Paper §4.1: one mapping table for all roles — an id can occur as
        // subject in one triple and object in another (e.g. ID2 in Fig. 1).
        let mut d = Dictionary::new();
        let t1 = d.encode_triple(&Triple::new(iri("ID3"), iri("advisor"), iri("ID2")));
        let t2 = d.encode_triple(&Triple::new(iri("ID2"), iri("worksFor"), Term::literal("MIT")));
        assert_eq!(t1.o, t2.s);
    }

    #[test]
    fn arena_buffers_roundtrip_through_try_from_arena() {
        let mut d = Dictionary::new();
        let terms = [
            iri("a"),
            Term::literal("plain"),
            Term::blank("b0"),
            Term::lang_literal("héllo", "fr"),
            Term::typed_literal("7", "http://www.w3.org/2001/XMLSchema#int"),
        ];
        for t in &terms {
            d.encode(t);
        }
        let rebuilt = Dictionary::try_from_arena(
            d.term_kinds().to_vec(),
            d.piece_ends().to_vec(),
            d.arena_bytes().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.len(), d.len());
        for (id, term) in d.iter() {
            assert_eq!(rebuilt.decode(id), Some(term.clone()));
            assert_eq!(rebuilt.id_of(&term), Some(id));
        }
        assert_eq!(rebuilt.arena_bytes(), d.arena_bytes());
    }

    #[test]
    fn try_from_arena_rejects_corrupt_images() {
        let mut d = Dictionary::new();
        d.encode(&iri("a"));
        d.encode(&Term::lang_literal("x", "en"));
        let (kinds, ends, arena) =
            (d.term_kinds().to_vec(), d.piece_ends().to_vec(), d.arena_bytes().to_vec());

        // Baseline sanity.
        assert!(Dictionary::try_from_arena(kinds.clone(), ends.clone(), arena.clone()).is_ok());
        // Unknown kind byte.
        let mut bad = kinds.clone();
        bad[0] = 9;
        assert_eq!(
            Dictionary::try_from_arena(bad, ends.clone(), arena.clone()).unwrap_err(),
            ArenaError::UnknownKind(9)
        );
        // Piece count mismatch.
        assert!(matches!(
            Dictionary::try_from_arena(kinds.clone(), ends[..1].to_vec(), arena.clone()),
            Err(ArenaError::PieceCount { .. })
        ));
        // Non-monotone offsets.
        let mut bad = ends.clone();
        bad.swap(0, 1);
        assert!(matches!(
            Dictionary::try_from_arena(kinds.clone(), bad, arena.clone()),
            Err(ArenaError::OffsetsNotMonotone) | Err(ArenaError::Duplicate)
        ));
        // Offsets not covering the arena.
        let mut bad = ends.clone();
        *bad.last_mut().unwrap() -= 1;
        assert_eq!(
            Dictionary::try_from_arena(kinds.clone(), bad, arena.clone()).unwrap_err(),
            ArenaError::OffsetsNotMonotone
        );
        // Invalid UTF-8.
        let mut bad = arena.clone();
        bad[0] = 0xFF;
        assert_eq!(
            Dictionary::try_from_arena(kinds.clone(), ends.clone(), bad).unwrap_err(),
            ArenaError::NotUtf8
        );
        // Duplicate terms.
        let mut d2 = Dictionary::new();
        d2.encode(&iri("a"));
        let (k2, e2, a2) =
            (d2.term_kinds().to_vec(), d2.piece_ends().to_vec(), d2.arena_bytes().to_vec());
        let kinds_dup = [k2.clone(), k2].concat();
        let ends_dup = vec![e2[0], e2[0] * 2];
        let arena_dup = [a2.clone(), a2].concat();
        assert_eq!(
            Dictionary::try_from_arena(kinds_dup, ends_dup, arena_dup).unwrap_err(),
            ArenaError::Duplicate
        );
        // Typed literal smuggling xsd:string.
        let mut d3 = Dictionary::new();
        d3.encode(&Term::typed_literal("v", "http://www.w3.org/2001/XMLSchema#int"));
        let lex_end = d3.piece_ends()[0];
        let arena3 =
            [&d3.arena_bytes()[..lex_end as usize], rdf_model::XSD_STRING.as_bytes()].concat();
        let ends3 = vec![lex_end, arena3.len() as u32];
        assert_eq!(
            Dictionary::try_from_arena(d3.term_kinds().to_vec(), ends3, arena3).unwrap_err(),
            ArenaError::NonCanonicalTyped
        );
    }

    #[test]
    fn shared_arena_reads_without_copying_and_copies_on_write() {
        let mut d = Dictionary::new();
        d.encode(&iri("a"));
        d.encode(&Term::lang_literal("x", "en"));
        let provider: SharedBytes = Arc::new(d.arena_bytes().to_vec());
        let len = d.arena_bytes().len();
        let mut shared = Dictionary::try_from_shared_arena(
            d.term_kinds().to_vec(),
            d.piece_ends().to_vec(),
            provider.clone(),
            0,
            len,
        )
        .unwrap();
        assert!(shared.arena_is_shared());
        assert_eq!(shared.decode(Id(0)), Some(iri("a")));
        assert_eq!(shared.id_of(&Term::lang_literal("x", "en")), Some(Id(1)));
        // A mapped arena's bytes are not heap bytes.
        assert!(shared.heap_bytes() < d.heap_bytes());
        // Interning a new term converts to owned storage, preserving ids.
        let new = shared.encode(&iri("new"));
        assert_eq!(new, Id(2));
        assert!(!shared.arena_is_shared());
        assert_eq!(shared.decode(Id(0)), Some(iri("a")));
        // Out-of-range windows are rejected.
        assert_eq!(
            Dictionary::try_from_shared_arena(vec![], vec![], provider, len, 1).unwrap_err(),
            ArenaError::OutOfBounds
        );
    }

    #[test]
    fn clone_is_shared_until_written() {
        let mut d = Dictionary::new();
        d.encode(&iri("a"));
        let snapshot = d.clone();
        assert!(Arc::ptr_eq(&d.inner, &snapshot.inner));
        // Hit-path encodes on a shared clone stay shared.
        d.encode(&iri("a"));
        assert!(Arc::ptr_eq(&d.inner, &snapshot.inner));
        // A miss re-owns the interior; the snapshot is unaffected.
        d.encode(&iri("b"));
        assert!(!Arc::ptr_eq(&d.inner, &snapshot.inner));
        assert_eq!(snapshot.len(), 1);
        assert_eq!(d.len(), 2);
        assert_eq!(snapshot.id_of(&iri("a")), Some(Id(0)));
    }
}
