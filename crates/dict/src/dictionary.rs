//! The bidirectional term ⇄ id mapping table.

use crate::id::{Id, IdTriple};
use rdf_model::{Term, Triple};
use std::collections::HashMap;

/// Dictionary encoding of RDF terms.
///
/// Maps each distinct [`Term`] to a dense [`Id`] (allocated in first-seen
/// order starting from 0) and back. All stores in the workspace share one
/// dictionary per dataset, exactly as the paper's single "mapping table"
/// (§4.1) serves all six indices.
#[derive(Default, Clone)]
pub struct Dictionary {
    terms: Vec<Term>,
    ids: HashMap<Term, Id>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Creates an empty dictionary with capacity for `n` distinct terms.
    pub fn with_capacity(n: usize) -> Self {
        Dictionary { terms: Vec::with_capacity(n), ids: HashMap::with_capacity(n) }
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Interns a term, returning its id. Idempotent: the same term always
    /// yields the same id.
    pub fn encode(&mut self, term: &Term) -> Id {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id =
            Id(u32::try_from(self.terms.len()).expect("dictionary overflow: more than 2^32 terms"));
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    /// Looks up the id of a term without interning it.
    pub fn id_of(&self, term: &Term) -> Option<Id> {
        self.ids.get(term).copied()
    }

    /// Decodes an id back to its term.
    pub fn decode(&self, id: Id) -> Option<&Term> {
        self.terms.get(id.index())
    }

    /// Encodes a triple, interning all three terms.
    pub fn encode_triple(&mut self, t: &Triple) -> IdTriple {
        IdTriple {
            s: self.encode(&t.subject),
            p: self.encode(&t.predicate),
            o: self.encode(&t.object),
        }
    }

    /// Looks up an already-interned triple. Returns `None` if any component
    /// has never been seen (in which case no store can contain the triple).
    pub fn triple_ids(&self, t: &Triple) -> Option<IdTriple> {
        Some(IdTriple {
            s: self.id_of(&t.subject)?,
            p: self.id_of(&t.predicate)?,
            o: self.id_of(&t.object)?,
        })
    }

    /// Decodes an encoded triple back to terms.
    pub fn decode_triple(&self, t: IdTriple) -> Option<Triple> {
        Some(Triple::new(
            self.decode(t.s)?.clone(),
            self.decode(t.p)?.clone(),
            self.decode(t.o)?.clone(),
        ))
    }

    /// Iterates `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, &Term)> {
        self.terms.iter().enumerate().map(|(i, t)| (Id(i as u32), t))
    }

    /// The interned terms in id order: `terms()[i]` is the term of
    /// `Id(i)`. Snapshot writers serialize this column directly instead
    /// of cloning per-term values.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Rebuilds a dictionary from terms already in id order (index `i`
    /// becomes `Id(i)`) — the snapshot-restore constructor. The reverse
    /// map is built in one pre-sized pass; term payloads are `Arc`-shared
    /// with the input, not re-copied.
    ///
    /// # Panics
    ///
    /// If the input contains duplicate terms (a corrupt snapshot — use
    /// [`Self::try_from_id_ordered_terms`] for untrusted input).
    pub fn from_id_ordered_terms(terms: Vec<Term>) -> Self {
        Self::try_from_id_ordered_terms(terms).expect("duplicate term in id-ordered input")
    }

    /// Like [`Self::from_id_ordered_terms`], but returns `None` when the
    /// input contains duplicate terms instead of panicking — snapshot
    /// readers turn that into a corruption error. Distinctness falls out
    /// of the reverse-map build itself, so validation costs no extra
    /// hashing pass.
    pub fn try_from_id_ordered_terms(terms: Vec<Term>) -> Option<Self> {
        let mut ids = HashMap::with_capacity(terms.len());
        for (i, term) in terms.iter().enumerate() {
            let id = Id(u32::try_from(i).expect("dictionary overflow: more than 2^32 terms"));
            if ids.insert(term.clone(), id).is_some() {
                return None;
            }
        }
        Some(Dictionary { terms, ids })
    }

    /// Approximate heap footprint of the dictionary in bytes: the id-to-term
    /// vector, the hash table, and each term's string payload (counted once —
    /// the two directions share `Arc<str>` buffers).
    pub fn heap_bytes(&self) -> usize {
        let strings: usize = self
            .terms
            .iter()
            .map(|t| match t {
                Term::Iri(i) => i.as_str().len(),
                Term::Blank(b) => b.as_str().len(),
                Term::Literal(l) => l.lexical().len() + l.language().map_or(0, str::len),
            })
            .sum();
        let vec = self.terms.capacity() * std::mem::size_of::<Term>();
        // HashMap stores (Term, Id) entries plus ~1/8 control byte overhead.
        let map = self.ids.capacity() * (std::mem::size_of::<(Term, Id)>() + 1);
        strings + vec + map
    }
}

impl std::fmt::Debug for Dictionary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dictionary").field("terms", &self.terms.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    #[test]
    fn encode_is_idempotent_and_dense() {
        let mut d = Dictionary::new();
        let a = d.encode(&iri("a"));
        let b = d.encode(&iri("b"));
        let a2 = d.encode(&iri("a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a, Id(0));
        assert_eq!(b, Id(1));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_inverts_encode() {
        let mut d = Dictionary::new();
        let terms =
            [iri("a"), Term::literal("lit"), Term::blank("b0"), Term::lang_literal("x", "en")];
        let ids: Vec<Id> = terms.iter().map(|t| d.encode(t)).collect();
        for (id, term) in ids.iter().zip(&terms) {
            assert_eq!(d.decode(*id), Some(term));
        }
    }

    #[test]
    fn distinct_literal_forms_get_distinct_ids() {
        let mut d = Dictionary::new();
        // Same lexical form, different term kinds/tags must not collide.
        let plain = d.encode(&Term::literal("MIT"));
        let lang = d.encode(&Term::lang_literal("MIT", "en"));
        let iri = d.encode(&Term::iri("MIT"));
        assert_ne!(plain, lang);
        assert_ne!(plain, iri);
        assert_ne!(lang, iri);
    }

    #[test]
    fn id_of_does_not_intern() {
        let mut d = Dictionary::new();
        assert_eq!(d.id_of(&iri("a")), None);
        assert_eq!(d.len(), 0);
        d.encode(&iri("a"));
        assert_eq!(d.id_of(&iri("a")), Some(Id(0)));
    }

    #[test]
    fn triple_roundtrip() {
        let mut d = Dictionary::new();
        let t = Triple::new(iri("ID1"), iri("advisor"), iri("ID2"));
        let enc = d.encode_triple(&t);
        assert_eq!(d.decode_triple(enc), Some(t.clone()));
        assert_eq!(d.triple_ids(&t), Some(enc));
    }

    #[test]
    fn triple_ids_of_unknown_term_is_none() {
        let mut d = Dictionary::new();
        d.encode_triple(&Triple::new(iri("a"), iri("p"), iri("b")));
        let unknown = Triple::new(iri("a"), iri("p"), iri("zzz"));
        assert_eq!(d.triple_ids(&unknown), None);
    }

    #[test]
    fn decode_out_of_range_is_none() {
        let d = Dictionary::new();
        assert_eq!(d.decode(Id(0)), None);
        assert_eq!(d.decode_triple(IdTriple::from((0, 1, 2))), None);
    }

    #[test]
    fn iter_yields_id_order() {
        let mut d = Dictionary::new();
        d.encode(&iri("a"));
        d.encode(&iri("b"));
        let pairs: Vec<(Id, String)> = d.iter().map(|(i, t)| (i, t.to_string())).collect();
        assert_eq!(pairs[0].0, Id(0));
        assert_eq!(pairs[1].0, Id(1));
        assert!(pairs[0].1.contains("/a"));
    }

    #[test]
    fn from_id_ordered_terms_matches_incremental_encode() {
        let mut d = Dictionary::new();
        let terms =
            [iri("a"), Term::literal("lit"), Term::blank("b0"), Term::lang_literal("x", "en")];
        for t in &terms {
            d.encode(t);
        }
        let rebuilt = Dictionary::from_id_ordered_terms(d.terms().to_vec());
        assert_eq!(rebuilt.len(), d.len());
        for (id, term) in d.iter() {
            assert_eq!(rebuilt.decode(id), Some(term));
            assert_eq!(rebuilt.id_of(term), Some(id));
        }
        // Duplicate input is rejected by the fallible constructor.
        assert!(Dictionary::try_from_id_ordered_terms(vec![iri("a"), iri("a")]).is_none());
    }

    #[test]
    fn heap_bytes_grows_with_content() {
        let mut d = Dictionary::new();
        let empty = d.heap_bytes();
        for i in 0..100 {
            d.encode(&iri(&format!("term{i}")));
        }
        assert!(d.heap_bytes() > empty);
    }

    #[test]
    fn shared_subject_and_object_namespace() {
        // Paper §4.1: one mapping table for all roles — an id can occur as
        // subject in one triple and object in another (e.g. ID2 in Fig. 1).
        let mut d = Dictionary::new();
        let t1 = d.encode_triple(&Triple::new(iri("ID3"), iri("advisor"), iri("ID2")));
        let t2 = d.encode_triple(&Triple::new(iri("ID2"), iri("worksFor"), Term::literal("MIT")));
        assert_eq!(t1.o, t2.s);
    }
}
