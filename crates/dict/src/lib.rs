//! # hex-dict — dictionary encoding
//!
//! The Hexastore paper (§4.1) employs "a dictionary encoding similar to
//! that adopted in [Sesame, Oracle, Abadi et al.]": instead of storing
//! entire strings or URIs, string values are mapped to integer identifiers,
//! and a mapping table translates keys back to strings.
//!
//! This crate provides that layer:
//!
//! - [`Id`] — a dense `u32` key for a term,
//! - [`IdTriple`] — a dictionary-encoded triple (three [`Id`]s),
//! - [`Dictionary`] — the bidirectional term ⇄ id mapping.
//!
//! ## Example
//!
//! ```
//! use hex_dict::Dictionary;
//! use rdf_model::{Term, Triple};
//!
//! let mut dict = Dictionary::new();
//! let t = Triple::new(
//!     Term::iri("http://example.org/ID1"),
//!     Term::iri("http://example.org/advisor"),
//!     Term::iri("http://example.org/ID2"),
//! );
//! let enc = dict.encode_triple(&t);
//! assert_eq!(dict.decode_triple(enc).unwrap(), t);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dictionary;
mod id;
mod shard;

pub use dictionary::{ArenaError, Dictionary, SharedBytes};
pub use id::{Id, IdTriple};
