//! Sharded parallel batch encode with deterministic, serial-identical ids.
//!
//! The dictionary is hash-partitioned by term bytes: every distinct term
//! belongs to exactly one shard, so shard workers can intern their terms
//! with no locks and no cross-thread coordination. Determinism comes from
//! a remap pass: workers hand out *shard-local* ids and record the global
//! position of each new term's first occurrence; afterwards the new terms
//! are ordered by that first occurrence and assigned final ids in that
//! order — exactly the ids a serial first-seen [`Dictionary::encode`]
//! loop hands out, independent of thread count and scheduling.

use crate::dictionary::{
    hash_parts, parts, pieces_of, slots_for, Dictionary, TermIndex, EMPTY_SLOT,
};
use crate::id::{Id, IdTriple};
use rdf_model::{Term, Triple};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Upper bound on encode shards; more buys nothing below ~10^8 terms.
const MAX_ENCODE_SHARDS: usize = 16;

/// High bit tagging a shard-local id in the occurrence resolution array
/// (untagged values are final global ids). Limits parallel encode to
/// dictionaries under 2^31 terms; larger batches fall back to serial.
const LOCAL_TAG: u32 = 1 << 31;

/// Terms a shard worker interned: the same columnar layout as the main
/// dictionary, plus the bookkeeping the remap pass needs.
#[derive(Default)]
struct ShardNew {
    kinds: Vec<u8>,
    first_piece: Vec<u32>,
    ends: Vec<u32>,
    arena: Vec<u8>,
    /// Hash of each local term (so neither growth nor the final merge
    /// rehashes anything).
    hashes: Vec<u64>,
    /// Global occurrence index of each local term's first sighting,
    /// strictly increasing by construction.
    first_pos: Vec<u32>,
}

impl ShardNew {
    fn term_bytes(&self, lid: u32) -> (&[u8], Option<&[u8]>) {
        let i = lid as usize;
        let p = self.first_piece[i] as usize;
        let start = if p == 0 { 0 } else { self.ends[p - 1] as usize };
        let a = &self.arena[start..self.ends[p] as usize];
        let b = if pieces_of(self.kinds[i]) == 2 {
            Some(&self.arena[self.ends[p] as usize..self.ends[p + 1] as usize])
        } else {
            None
        };
        (a, b)
    }

    fn matches(&self, lid: u32, kind: u8, a: &[u8], b: Option<&[u8]>) -> bool {
        if self.kinds[lid as usize] != kind {
            return false;
        }
        let (ca, cb) = self.term_bytes(lid);
        ca == a && cb == b
    }

    fn push(&mut self, kind: u8, a: &[u8], b: Option<&[u8]>, hash: u64, pos: u32) -> u32 {
        let lid = self.kinds.len() as u32;
        self.first_piece.push(self.ends.len() as u32);
        self.arena.extend_from_slice(a);
        self.ends.push(self.arena.len() as u32);
        if let Some(b) = b {
            self.arena.extend_from_slice(b);
            self.ends.push(self.arena.len() as u32);
        }
        self.kinds.push(kind);
        self.hashes.push(hash);
        self.first_pos.push(pos);
        lid
    }
}

/// The term at occurrence index `i` (occurrences enumerate every triple's
/// subject, predicate, object in document order).
#[inline]
fn occ_term(triples: &[Triple], i: usize) -> &Term {
    let t = &triples[i / 3];
    match i % 3 {
        0 => &t.subject,
        1 => &t.predicate,
        _ => &t.object,
    }
}

impl Dictionary {
    /// Encodes a batch of triples across `threads` hash-partitioned
    /// shards, returning exactly what a serial
    /// [`Dictionary::encode_triple`] loop over the same slice would:
    /// identical ids (new terms numbered in global first-seen order) and
    /// an identical arena afterwards, independent of thread scheduling.
    ///
    /// `threads <= 1`, tiny batches, and dictionaries at the 2^31-term
    /// id ceiling take the serial path; the result is the same either
    /// way.
    pub fn encode_triples_parallel(&mut self, triples: &[Triple], threads: usize) -> Vec<IdTriple> {
        let shards = threads.clamp(1, MAX_ENCODE_SHARDS);
        if shards <= 1
            || triples.len() < 2
            || self.len() as u64 + 3 * triples.len() as u64 >= u64::from(LOCAL_TAG)
        {
            return triples.iter().map(|t| self.encode_triple(t)).collect();
        }
        let m = triples.len() * 3;
        let chunk_triples = triples.len().div_ceil(shards);

        // Phase 1: hash every occurrence once, in parallel over contiguous
        // input chunks. The same hash drives shard routing, the base-index
        // probe, and the shard-local table.
        let mut hashes = vec![0u64; m];
        let mut shard_of = vec![0u8; m];
        std::thread::scope(|s| {
            let mut rest_h = hashes.as_mut_slice();
            let mut rest_s = shard_of.as_mut_slice();
            for chunk in triples.chunks(chunk_triples) {
                let (h, tail_h) = rest_h.split_at_mut(chunk.len() * 3);
                let (sh, tail_s) = rest_s.split_at_mut(chunk.len() * 3);
                (rest_h, rest_s) = (tail_h, tail_s);
                s.spawn(move || {
                    for (j, t) in chunk.iter().enumerate() {
                        for (c, term) in
                            [&t.subject, &t.predicate, &t.object].into_iter().enumerate()
                        {
                            let (kind, a, b) = parts(term);
                            let hv = hash_parts(kind, a.as_bytes(), b.map(str::as_bytes));
                            h[j * 3 + c] = hv;
                            // Route on high bits; the probe uses low bits.
                            sh[j * 3 + c] = (((hv >> 32) as usize) % shards) as u8;
                        }
                    }
                });
            }
        });

        // Phase 2: one worker per shard walks all occurrences, handling
        // only the terms its shard owns. Hits on the (read-only) base
        // dictionary resolve to final ids immediately; new terms get
        // shard-local ids in first-touch order. Each occurrence slot is
        // written by exactly the one worker owning its term.
        let out: Vec<AtomicU32> = std::iter::repeat_with(|| AtomicU32::new(0)).take(m).collect();
        let base = &*self.inner;
        let news: Vec<ShardNew> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..shards)
                .map(|w| {
                    let (hashes, shard_of, out) = (&hashes, &shard_of, &out);
                    s.spawn(move || {
                        let mut new = ShardNew::default();
                        let mut table = TermIndex::with_capacity(0);
                        for i in 0..m {
                            if shard_of[i] as usize != w {
                                continue;
                            }
                            let (kind, a, b) = parts(occ_term(triples, i));
                            let (a, b) = (a.as_bytes(), b.map(str::as_bytes));
                            let h = hashes[i];
                            if let Some(gid) = base.lookup(h, kind, a, b) {
                                out[i].store(gid, Ordering::Relaxed);
                                continue;
                            }
                            let lid = match table.probe(h, |lid| new.matches(lid, kind, a, b)) {
                                Ok(lid) => lid,
                                Err(slot) => {
                                    let lid = new.push(kind, a, b, h, i as u32);
                                    table.slots[slot] = lid;
                                    grow_local(&mut table, &new.hashes);
                                    lid
                                }
                            };
                            out[i].store(LOCAL_TAG | lid, Ordering::Relaxed);
                        }
                        new
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("encode shard worker panicked")).collect()
        });

        // Phase 3 (serial, proportional to *new* terms only): order the
        // new terms by first occurrence — the serial first-seen order —
        // and append them to the dictionary in that order, building the
        // shard-local → global remap tables.
        let mut order: Vec<(u32, u32, u32)> = Vec::new();
        for (w, sn) in news.iter().enumerate() {
            order.extend(
                sn.first_pos.iter().enumerate().map(|(lid, &fp)| (fp, w as u32, lid as u32)),
            );
        }
        order.sort_unstable();
        let mut remap: Vec<Vec<u32>> =
            news.iter().map(|sn| vec![0u32; sn.first_pos.len()]).collect();
        let inner = Arc::make_mut(&mut self.inner);
        for &(_, w, lid) in &order {
            let sn = &news[w as usize];
            let (a, b) = sn.term_bytes(lid);
            let gid = inner.push_term(sn.kinds[lid as usize], a, b, sn.hashes[lid as usize]);
            remap[w as usize][lid as usize] = gid.0;
        }

        // Phase 4: resolve occurrences to final ids, in parallel over the
        // same contiguous chunks as phase 1.
        let mut result = vec![IdTriple::from((0, 0, 0)); triples.len()];
        std::thread::scope(|s| {
            let (remap, shard_of, out) = (&remap, &shard_of, &out);
            let mut rest = result.as_mut_slice();
            let mut offset = 0usize;
            while !rest.is_empty() {
                let take = chunk_triples.min(rest.len());
                let (cur, tail) = rest.split_at_mut(take);
                rest = tail;
                let start = offset;
                offset += take;
                s.spawn(move || {
                    let resolve = |i: usize| -> Id {
                        let v = out[i].load(Ordering::Relaxed);
                        if v & LOCAL_TAG != 0 {
                            Id(remap[shard_of[i] as usize][(v & !LOCAL_TAG) as usize])
                        } else {
                            Id(v)
                        }
                    };
                    for (j, slot) in cur.iter_mut().enumerate() {
                        let base = (start + j) * 3;
                        *slot = IdTriple {
                            s: resolve(base),
                            p: resolve(base + 1),
                            o: resolve(base + 2),
                        };
                    }
                });
            }
        });
        result
    }
}

/// Doubles a shard-local table when one more entry would cross the 7/8
/// load factor, reinserting from the stored hashes.
fn grow_local(table: &mut TermIndex, hashes: &[u64]) {
    if table.slots.len() * 7 >= (hashes.len() + 1) * 8 {
        return;
    }
    let mut slots = vec![EMPTY_SLOT; slots_for(hashes.len() + 1)];
    let mask = slots.len() - 1;
    for (lid, &h) in hashes.iter().enumerate() {
        let mut i = (h as usize) & mask;
        while slots[i] != EMPTY_SLOT {
            i = (i + 1) & mask;
        }
        slots[i] = lid as u32;
    }
    table.slots = slots;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: impl std::fmt::Display) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    /// A mixed-kind batch with heavy duplication across and within
    /// triples.
    fn batch(n: usize) -> Vec<Triple> {
        (0..n)
            .map(|i| {
                let s = iri(format!("s{}", i % 23));
                let p = iri(format!("p{}", i % 5));
                let o = match i % 4 {
                    0 => iri(format!("o{}", i % 17)),
                    1 => Term::literal(format!("v{}", i % 13)),
                    2 => Term::lang_literal(format!("v{}", i % 13), "en"),
                    _ => Term::typed_literal(
                        format!("{}", i % 7),
                        "http://www.w3.org/2001/XMLSchema#integer",
                    ),
                };
                Triple::new(s, p, o)
            })
            .collect()
    }

    fn assert_identical(serial: &Dictionary, par: &Dictionary) {
        assert_eq!(serial.len(), par.len());
        assert_eq!(serial.term_kinds(), par.term_kinds());
        assert_eq!(serial.piece_ends(), par.piece_ends());
        assert_eq!(serial.arena_bytes(), par.arena_bytes());
    }

    #[test]
    fn parallel_encode_matches_serial_for_all_thread_counts() {
        let triples = batch(500);
        let mut serial = Dictionary::new();
        let serial_ids: Vec<IdTriple> = triples.iter().map(|t| serial.encode_triple(t)).collect();
        for threads in 1..=8 {
            let mut par = Dictionary::new();
            let par_ids = par.encode_triples_parallel(&triples, threads);
            assert_eq!(par_ids, serial_ids, "ids diverge at {threads} threads");
            assert_identical(&serial, &par);
        }
    }

    #[test]
    fn parallel_encode_respects_preexisting_terms() {
        let triples = batch(300);
        let mut seed = Dictionary::new();
        // Pre-intern an overlapping but differently-ordered term set.
        for t in triples.iter().rev().take(40) {
            seed.encode(&t.object);
            seed.encode(&t.subject);
        }
        let mut serial = seed.clone();
        let serial_ids: Vec<IdTriple> = triples.iter().map(|t| serial.encode_triple(t)).collect();
        for threads in [2, 3, 8] {
            let mut par = seed.clone();
            let par_ids = par.encode_triples_parallel(&triples, threads);
            assert_eq!(par_ids, serial_ids, "ids diverge at {threads} threads");
            assert_identical(&serial, &par);
        }
    }

    #[test]
    fn parallel_encode_of_empty_and_tiny_batches() {
        let mut d = Dictionary::new();
        assert!(d.encode_triples_parallel(&[], 4).is_empty());
        let one = batch(1);
        let ids = d.encode_triples_parallel(&one, 4);
        assert_eq!(ids.len(), 1);
        assert_eq!(d.triple_ids(&one[0]), Some(ids[0]));
    }
}
