//! Oracle tests for the sharded parallel encoder and the arena
//! constructors.
//!
//! The contract under test is byte-identity: for any triple batch and
//! any worker count, `encode_triples_parallel` must leave the
//! dictionary in *exactly* the state a serial first-seen
//! `encode_triple` loop produces — same ids, same id order, same kind
//! column, same offset table, same arena bytes. Not "equivalent up to
//! renumbering": identical, so snapshots and plans built either way are
//! interchangeable.
//!
//! The corruption half drives the arena constructor with every
//! single-byte offset-table flip and every arena truncation, asserting
//! rejection or a well-formed dictionary — never a panic.

use hex_dict::{Dictionary, Id};
use proptest::prelude::*;
use rdf_model::{Term, Triple};

/// Terms across all five kinds, with repeats likely (small id spaces)
/// and multi-byte UTF-8 in literal content.
fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0u32..40).prop_map(|i| Term::iri(format!("http://example.org/node/{i}"))),
        (0u32..20).prop_map(|i| Term::blank(format!("b{i}"))),
        (0u32..30).prop_map(|i| Term::literal(format!("plain value {i} é∀"))),
        ((0u32..15), prop_oneof![Just("en"), Just("fr"), Just("de-CH")])
            .prop_map(|(i, tag)| Term::lang_literal(format!("étiquette {i}"), tag)),
        (0u32..15).prop_map(|i| Term::typed_literal(
            format!("{i}"),
            "http://www.w3.org/2001/XMLSchema#integer"
        )),
        // The canonicalized case: typed xsd:string must intern as plain.
        (0u32..10).prop_map(|i| Term::typed_literal(
            format!("s{i}"),
            "http://www.w3.org/2001/XMLSchema#string"
        )),
    ]
}

fn triple_strategy() -> impl Strategy<Value = Vec<Triple>> {
    proptest::collection::vec(
        (term_strategy(), term_strategy(), term_strategy())
            .prop_map(|(s, p, o)| Triple::new(s, p, o)),
        0..120,
    )
}

fn assert_dictionaries_byte_identical(serial: &Dictionary, parallel: &Dictionary, ctx: &str) {
    assert_eq!(parallel.len(), serial.len(), "{ctx}: term count");
    assert_eq!(parallel.term_kinds(), serial.term_kinds(), "{ctx}: kind column");
    assert_eq!(parallel.piece_ends(), serial.piece_ends(), "{ctx}: offset table");
    assert_eq!(parallel.arena_bytes(), serial.arena_bytes(), "{ctx}: arena bytes");
    assert_eq!(parallel.terms(), serial.terms(), "{ctx}: id-ordered terms");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every worker count 1–8, the parallel encoder's ids and final
    /// dictionary are byte-identical to the serial first-seen loop.
    #[test]
    fn sharded_encode_is_byte_identical_to_serial(triples in triple_strategy()) {
        let mut serial = Dictionary::new();
        let want: Vec<_> = triples.iter().map(|t| serial.encode_triple(t)).collect();
        for threads in 1..=8usize {
            let mut dict = Dictionary::new();
            let got = dict.encode_triples_parallel(&triples, threads);
            prop_assert_eq!(&got, &want, "ids differ at {} threads", threads);
            assert_dictionaries_byte_identical(&serial, &dict, &format!("{threads} threads"));
        }
    }

    /// Same identity when the dictionary already holds terms: base ids
    /// are reused, new terms extend in serial first-seen order.
    #[test]
    fn sharded_encode_is_byte_identical_over_a_seeded_base(
        seed in proptest::collection::vec(term_strategy(), 0..40),
        triples in triple_strategy(),
    ) {
        let mut serial = Dictionary::new();
        for t in &seed {
            serial.encode(t);
        }
        let base = serial.clone();
        let want: Vec<_> = triples.iter().map(|t| serial.encode_triple(t)).collect();
        for threads in [2usize, 3, 5, 8] {
            let mut dict = base.clone();
            let got = dict.encode_triples_parallel(&triples, threads);
            prop_assert_eq!(&got, &want, "ids differ at {} threads", threads);
            assert_dictionaries_byte_identical(&serial, &dict, &format!("{threads} threads"));
        }
    }

    /// Flipping any single byte of the offset table either yields a
    /// rejection or a dictionary whose every decode stays well-formed —
    /// never a panic, never an id resolving outside the arena.
    #[test]
    fn offset_table_byte_flips_never_panic(
        terms in proptest::collection::vec(term_strategy(), 1..30),
        flip_byte in 0usize..4096,
        mask in 1u8..=255,
    ) {
        let mut d = Dictionary::new();
        for t in &terms {
            d.encode(t);
        }
        let kinds = d.term_kinds().to_vec();
        let mut end_bytes: Vec<u8> =
            d.piece_ends().iter().flat_map(|e| e.to_le_bytes()).collect();
        let at = flip_byte % end_bytes.len();
        end_bytes[at] ^= mask;
        let ends: Vec<u32> = end_bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if let Ok(rebuilt) = Dictionary::try_from_arena(kinds, ends, d.arena_bytes().to_vec()) {
            for id in 0..rebuilt.len() as u32 {
                let term = rebuilt.decode(Id(id));
                prop_assert!(term.is_some(), "id {} lost by an accepted table", id);
            }
        }
    }

    /// Truncating the arena at every cut point either rejects or yields
    /// a dictionary that still decodes without panicking.
    #[test]
    fn arena_truncation_at_every_cut_never_panics(
        terms in proptest::collection::vec(term_strategy(), 1..20),
    ) {
        let mut d = Dictionary::new();
        for t in &terms {
            d.encode(t);
        }
        let arena = d.arena_bytes().to_vec();
        for cut in 0..arena.len() {
            let result = Dictionary::try_from_arena(
                d.term_kinds().to_vec(),
                d.piece_ends().to_vec(),
                arena[..cut].to_vec(),
            );
            // A truncated arena can no longer be covered by the offset
            // table, so the monotone-cover check must reject it.
            prop_assert!(result.is_err(), "cut at {} accepted", cut);
        }
    }
}

/// A deterministic pass at a size big enough to exercise index growth,
/// multi-chunk hashing, and every shard: 4096 triples over ~1200
/// distinct terms.
#[test]
fn sharded_encode_matches_serial_at_index_growth_scale() {
    let triples: Vec<Triple> = (0..4096)
        .map(|i| {
            Triple::new(
                Term::iri(format!("http://example.org/subject/{}", i % 700)),
                Term::iri(format!("http://example.org/predicate/{}", i % 29)),
                match i % 3 {
                    0 => Term::literal(format!("object value {}", i % 500)),
                    1 => Term::lang_literal(format!("valeur {}", i % 200), "fr"),
                    _ => Term::typed_literal(
                        format!("{}", i % 300),
                        "http://www.w3.org/2001/XMLSchema#integer",
                    ),
                },
            )
        })
        .collect();
    let mut serial = Dictionary::new();
    let want: Vec<_> = triples.iter().map(|t| serial.encode_triple(t)).collect();
    for threads in [2usize, 4, 8] {
        let mut dict = Dictionary::new();
        let got = dict.encode_triples_parallel(&triples, threads);
        assert_eq!(got, want, "{threads} threads");
        assert_dictionaries_byte_identical(&serial, &dict, &format!("{threads} threads"));
    }
}
