//! Vendored stand-in for `serde_json`, paired with the vendored `serde`.
//!
//! Converts the vendored [`serde::Value`] tree to and from JSON text:
//! [`to_string`] renders any [`serde::Serialize`] type, [`from_str`]
//! parses into any [`serde::Deserialize`] type. The emitted JSON matches
//! real serde_json's defaults for the shapes the derive produces
//! (structs as objects, newtypes unwrapped, externally tagged enums), so
//! snapshot files stay conventional and portable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Renders `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { chars: text.chars().collect(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.chars.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------- writing

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if !v.is_finite() {
                return Err(Error::custom("JSON cannot represent NaN or infinity"));
            }
            out.push_str(&v.to_string());
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char, Error> {
        let c = self.peek().ok_or_else(|| Error::custom("unexpected end of JSON"))?;
        self.pos += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<(), Error> {
        let got = self.bump()?;
        if got != want {
            return Err(Error::custom(format_args!("expected {want:?}, found {got:?}")));
        }
        Ok(())
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), Error> {
        for want in word.chars() {
            self.expect(want)?;
        }
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some('n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some('t') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some('f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some('"') => self.parse_string().map(Value::Str),
            Some('[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump()? {
                        ',' => {}
                        ']' => return Ok(Value::Seq(items)),
                        c => {
                            return Err(Error::custom(format_args!("expected , or ], found {c:?}")))
                        }
                    }
                }
            }
            Some('{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.bump()? {
                        ',' => {}
                        '}' => return Ok(Value::Map(entries)),
                        c => {
                            return Err(Error::custom(format_args!(
                                "expected , or }}, found {c:?}"
                            )))
                        }
                    }
                }
            }
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::custom(format_args!("unexpected character {c:?}"))),
            None => Err(Error::custom("unexpected end of JSON")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{08}'),
                    'f' => out.push('\u{0C}'),
                    'u' => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            self.expect('\\')?;
                            self.expect('u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::custom("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                        );
                    }
                    c => return Err(Error::custom(format_args!("invalid escape \\{c}"))),
                },
                c if (c as u32) < 0x20 => {
                    return Err(Error::custom("unescaped control character in string"));
                }
                c => out.push(c),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump()?;
            let digit = c.to_digit(16).ok_or_else(|| Error::custom("invalid hex digit"))?;
            v = v * 16 + digit;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => self.pos += 1,
                '.' | 'e' | 'E' | '+' | '-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if is_float {
            let v: f64 = text.parse().map_err(|_| Error::custom("invalid number"))?;
            Ok(Value::F64(v))
        } else if text.starts_with('-') {
            // Parse with the sign attached so i64::MIN round-trips.
            let v: i64 = text.parse().map_err(|_| Error::custom("integer out of range"))?;
            Ok(Value::I64(v))
        } else {
            let v: u64 = text.parse().map_err(|_| Error::custom("integer out of range"))?;
            Ok(Value::U64(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        // Regression: i64::MIN has no positive counterpart, so it must be
        // parsed with the sign attached rather than negated afterwards.
        let min_text = to_string(&i64::MIN).unwrap();
        assert_eq!(from_str::<i64>(&min_text).unwrap(), i64::MIN);
        assert_eq!(from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(), u64::MAX);
        assert!(from_str::<bool>(" true ").unwrap());
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\n\"quoted\" \\ tab\t unicode: öäü€ \u{1}".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        // Explicit escapes parse too.
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v: Vec<(u32, Option<String>)> =
            vec![(1, Some("a".into())), (2, None), (3, Some("c".into()))];
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"[[1,"a"],[2,null],[3,"c"]]"#);
        assert_eq!(from_str::<Vec<(u32, Option<String>)>>(&json).unwrap(), v);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("42 junk").is_err());
        assert!(from_str::<String>(r#""unterminated"#).is_err());
        assert!(from_str::<Vec<u32>>("[1,2").is_err());
    }
}
