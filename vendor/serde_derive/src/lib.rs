//! Vendored stand-in for `serde_derive`.
//!
//! Hand-rolled derive macros (no `syn`/`quote`, since the build
//! environment has no registry access) that generate impls of the
//! companion `serde` crate's Value-tree `Serialize`/`Deserialize`
//! traits. Supported shapes — everything this workspace derives on:
//!
//! - structs with named fields (optionally generic over type params);
//! - tuple structs (newtypes unwrap to their inner value);
//! - enums with unit, tuple, or struct variants (externally tagged).
//!
//! Unsupported input (lifetimes, const generics, `where` clauses,
//! `#[serde(...)]` attributes) produces a `compile_error!` naming the
//! limitation rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the vendored `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input).map(|item| generate(&item, mode)) {
        Ok(code) => code.parse().expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// What we need to know about the deriving item.
struct Item {
    name: String,
    /// Type parameter names, e.g. `["K", "V"]`.
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    pos += 1;

    let generics = parse_generics(&tokens, &mut pos)?;

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                generics,
                kind: Kind::NamedStruct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item { name, generics, kind: Kind::TupleStruct(count_tuple_fields(g.stream())) })
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
                Err("`where` clauses are not supported by the vendored serde_derive".into())
            }
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item { name, generics, kind: Kind::Enum(parse_variants(g.stream())?) })
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Advances past attributes (`#[...]`, including doc comments) and a
/// `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `<A, B, ...>` type parameters (plain idents only).
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Result<Vec<String>, String> {
    let mut params = Vec::new();
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => *pos += 1,
        _ => return Ok(params),
    }
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                *pos += 1;
                return Ok(params);
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => *pos += 1,
            Some(TokenTree::Ident(id)) => {
                params.push(id.to_string());
                *pos += 1;
                // Bounds, defaults, lifetimes, and const params are out of
                // scope for the vendored derive.
                match tokens.get(*pos) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' || p.as_char() == '=' => {
                        return Err(format!(
                            "generic bounds/defaults on `{}` are not supported by the vendored serde_derive",
                            params.last().unwrap()
                        ));
                    }
                    _ => {}
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                return Err(
                    "lifetime parameters are not supported by the vendored serde_derive".into()
                );
            }
            other => return Err(format!("unsupported generic parameter: {other:?}")),
        }
    }
}

/// Splits a brace-group body into top-level comma-separated chunks.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().unwrap().push(tok);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut pos = 0;
            skip_attrs_and_vis(&chunk, &mut pos);
            match chunk.get(pos) {
                Some(TokenTree::Ident(id)) => Ok(id.to_string()),
                other => Err(format!("expected field name, found {other:?}")),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut pos = 0;
            skip_attrs_and_vis(&chunk, &mut pos);
            let name = match chunk.get(pos) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => return Err(format!("expected variant name, found {other:?}")),
            };
            pos += 1;
            let fields = match chunk.get(pos) {
                None => VariantFields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantFields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantFields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                    return Err(format!(
                        "explicit discriminant on `{name}` is not supported by the vendored serde_derive"
                    ));
                }
                other => return Err(format!("unsupported variant body: {other:?}")),
            };
            Ok(Variant { name, fields })
        })
        .collect()
}

// ------------------------------------------------------------- generation

fn generate(item: &Item, mode: Mode) -> String {
    let trait_name = match mode {
        Mode::Serialize => "Serialize",
        Mode::Deserialize => "Deserialize",
    };
    let impl_generics = if item.generics.is_empty() {
        String::new()
    } else {
        let bounded: Vec<String> =
            item.generics.iter().map(|g| format!("{g}: ::serde::{trait_name}")).collect();
        format!("<{}>", bounded.join(", "))
    };
    let type_generics = if item.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics.join(", "))
    };
    let name = &item.name;
    let body = match mode {
        Mode::Serialize => serialize_body(item),
        Mode::Deserialize => deserialize_body(item),
    };
    let signature = match mode {
        Mode::Serialize => "fn to_value(&self) -> ::serde::Value",
        Mode::Deserialize => {
            "fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error>"
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::{trait_name} for {name}{type_generics} {{\n\
             {signature} {{ {body} }}\n\
         }}"
    )
}

fn serialize_body(item: &Item) -> String {
    match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let name = &item.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?}))"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({vname:?}), ::serde::Serialize::to_value(f0))])"
                        ),
                        VariantFields::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vname:?}), \
                                  ::serde::Value::Seq(::std::vec![{}]))])",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binders = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vname:?}), \
                                  ::serde::Value::Map(::std::vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    }
}

fn deserialize_body(item: &Item) -> String {
    let name = &item.name;
    match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field(entries, {f:?})?)?"
                    )
                })
                .collect();
            format!(
                "let entries = value.as_map().ok_or_else(|| \
                 ::serde::Error::custom(concat!(\"expected map for \", {name:?})))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Kind::TupleStruct(n) => {
            let inits: Vec<String> =
                (0..*n).map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?")).collect();
            format!(
                "let seq = value.as_seq().ok_or_else(|| \
                 ::serde::Error::custom(concat!(\"expected sequence for \", {name:?})))?;\n\
                 if seq.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(concat!(\"wrong arity for \", {name:?}))); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    format!("{:?} => return ::std::result::Result::Ok({name}::{}),", v.name, v.name)
                })
                .collect();
            let mut tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "{vname:?} => ::std::result::Result::Ok(\
                             {name}::{vname}(::serde::Deserialize::from_value(inner)?))"
                        )),
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vname:?} => {{ let seq = inner.as_seq().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected sequence variant\"))?; \
                                 if seq.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::Error::custom(\"wrong variant arity\")); }} \
                                 ::std::result::Result::Ok({name}::{vname}({})) }}",
                                inits.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::field(entries, {f:?})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{ let entries = inner.as_map().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected map variant\"))?; \
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            // The fallback arm lives in the same list so an enum with only
            // unit variants still yields a syntactically valid match.
            tagged_arms.push(format!(
                "_ => ::std::result::Result::Err(::serde::Error::custom(\
                 concat!(\"unknown variant of \", {name:?})))"
            ));
            format!(
                "if let ::std::option::Option::Some(tag) = value.as_str() {{\n\
                     match tag {{ {unit} _ => return ::std::result::Result::Err(\
                     ::serde::Error::custom(concat!(\"unknown unit variant of \", {name:?}))) }}\n\
                 }}\n\
                 let entries = value.as_map().ok_or_else(|| \
                 ::serde::Error::custom(concat!(\"expected variant map for \", {name:?})))?;\n\
                 if entries.len() != 1 {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"expected single-entry variant map\")); }}\n\
                 let (tag, inner) = (&entries[0].0, &entries[0].1);\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                     {tagged}\n\
                 }}",
                unit = unit_arms.join(" "),
                tagged = tagged_arms.join(",\n")
            )
        }
    }
}
