//! Vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the exact surface its generators use: a seedable
//! [`rngs::StdRng`] plus the [`Rng`] extension methods `gen`, `gen_range`
//! and `gen_bool`. The generator is xoshiro256++ seeded through SplitMix64
//! — deterministic for a given seed, statistically solid for workload
//! synthesis, and explicitly **not** cryptographic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (uniform_below(rng, span)) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `0..span` (`span > 0`, `span <= 2^64`) without
/// modulo bias, by rejection sampling on the top of the word.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    if span == (1u128 << 64) {
        return rng.next_u64();
    }
    let span = span as u64;
    // Largest multiple of `span` that fits in u64; values above it would
    // skew the modulo, so they are rejected and redrawn.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike the real `rand::rngs::StdRng` this is not a CSPRNG; it is
    /// used here only for synthetic-workload generation and property
    /// tests, where speed and seed-reproducibility are what matter.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the 64-bit seed into 256 bits of
            // state; it cannot produce the all-zero state xoshiro forbids.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values should appear");
        for _ in 0..1000 {
            let v = rng.gen_range(1..=3);
            assert!((1..=3).contains(&v));
        }
        // Negative bounds work too.
        for _ in 0..100 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
