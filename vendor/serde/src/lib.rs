//! Vendored stand-in for `serde`.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors a compact serialization framework under the `serde` name. It
//! is **not** API-compatible with real serde's visitor architecture;
//! instead both traits go through an owned [`Value`] tree:
//!
//! - [`Serialize`] renders a type to a [`Value`];
//! - [`Deserialize`] rebuilds a type from a [`Value`];
//! - `#[derive(Serialize, Deserialize)]` (from the companion
//!   `serde_derive` proc-macro crate, re-exported here) generates those
//!   impls for plain structs, tuple structs, and enums;
//! - the companion `serde_json` crate converts [`Value`] to and from
//!   JSON text.
//!
//! The encoding mirrors serde_json's defaults so snapshots look
//! conventional: structs become maps, newtype structs unwrap to their
//! inner value, and enum variants are externally tagged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Let this crate's own tests use the derive macros, whose generated code
// refers to `::serde`.
extern crate self as serde;

use std::fmt;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing tree every type serializes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (used for `Option::None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples, tuple structs).
    Seq(Vec<Value>),
    /// Ordered map with string keys (structs, tagged enum variants).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a signed integer, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers convert losslessly when possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a required struct field in map entries (derive helper).
pub fn field<'v>(entries: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format_args!("missing field `{name}`")))
}

/// A type that can render itself to a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds an instance from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().map(|v| v as f32).ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned).ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for Arc<str> {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Arc<str> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(Arc::from).ok_or_else(|| Error::custom("expected string"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ( $( ($($name:ident : $idx:tt),+) ),+ ) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$( self.$idx.to_value() ),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let seq = value.as_seq().ok_or_else(|| Error::custom("expected tuple"))?;
                let expected = [$( $idx ),+].len();
                if seq.len() != expected {
                    return Err(Error::custom(format_args!(
                        "expected tuple of {expected}, got {}", seq.len()
                    )));
                }
                Ok(($( $name::from_value(&seq[$idx])?, )+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s: Arc<str> = Arc::from("hi");
        assert_eq!(&*Arc::<str>::from_value(&s.to_value()).unwrap(), "hi");
    }

    #[test]
    fn options_and_vecs_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let val = v.to_value();
        assert_eq!(Vec::<Option<u32>>::from_value(&val).unwrap(), v);
    }

    #[test]
    fn tuples_check_arity() {
        let val = (1u32, 2u32).to_value();
        assert!(<(u32, u32, u32)>::from_value(&val).is_err());
        assert_eq!(<(u32, u32)>::from_value(&val).unwrap(), (1, 2));
    }

    #[test]
    fn out_of_range_is_an_error() {
        let big = Value::U64(u64::MAX);
        assert!(u32::from_value(&big).is_err());
        assert!(i64::from_value(&big).is_err());
    }

    // ------------------------------------------- derive macro coverage

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Named {
        a: u32,
        b: Option<String>,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Newtype(u32);

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Pair(u32, String);

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    enum Mixed {
        Unit,
        One(u32),
        Two(u32, u32),
        Fields { x: u32 },
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    enum UnitOnly {
        A,
        B,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Generic<K, V> {
        entries: Vec<(K, V)>,
    }

    #[test]
    fn derived_structs_roundtrip() {
        for v in [Named { a: 1, b: Some("x".into()) }, Named { a: 2, b: None }] {
            assert_eq!(Named::from_value(&v.to_value()).unwrap(), v);
        }
        assert_eq!(Newtype::from_value(&Newtype(7).to_value()).unwrap(), Newtype(7));
        // Newtypes unwrap to their inner value, as with real serde.
        assert_eq!(Newtype(7).to_value(), Value::U64(7));
        let p = Pair(1, "two".into());
        assert_eq!(Pair::from_value(&p.to_value()).unwrap(), p);
    }

    #[test]
    fn derived_enums_roundtrip() {
        for v in [Mixed::Unit, Mixed::One(1), Mixed::Two(2, 3), Mixed::Fields { x: 4 }] {
            assert_eq!(Mixed::from_value(&v.to_value()).unwrap(), v);
        }
        // Regression: enums whose variants are all unit used to make the
        // derive emit invalid Rust (stray comma in an empty match).
        for v in [UnitOnly::A, UnitOnly::B] {
            assert_eq!(UnitOnly::from_value(&v.to_value()).unwrap(), v);
        }
        assert!(UnitOnly::from_value(&Value::Str("C".into())).is_err());
        assert!(Mixed::from_value(&Value::Map(vec![("Nope".into(), Value::Null)])).is_err());
    }

    #[test]
    fn derived_generics_roundtrip() {
        let g = Generic { entries: vec![(1u32, "a".to_string()), (2, "b".to_string())] };
        assert_eq!(Generic::<u32, String>::from_value(&g.to_value()).unwrap(), g);
    }
}
