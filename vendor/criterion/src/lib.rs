//! Vendored stand-in for the `criterion` benchmark harness (0.5 API
//! subset).
//!
//! The build environment has no crates-registry access, so this crate
//! provides the exact surface the workspace's benches compile against:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size`/`warm_up_time`/`measurement_time`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`], plus the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — warm up, then run timed samples
//! within the configured measurement budget and report min/mean — rather
//! than criterion's full statistical machinery. Numbers printed by this
//! harness are indicative; the paper-figure CSVs from the `figures`
//! binary are the workspace's real evidence artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measurement strategies (only wall-clock is provided).
pub mod measurement {
    /// Wall-clock time measurement, the criterion default.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// How `iter_batched` amortizes setup cost across a batch.
///
/// This stand-in runs one routine call per setup call regardless of the
/// hint, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input; setup is cheap relative to the routine.
    SmallInput,
    /// Large per-iteration input; setup dominates, keep batches small.
    LargeInput,
    /// Fresh setup for every single iteration.
    PerIteration,
    /// Explicit number of batches.
    NumBatches(u64),
    /// Explicit number of iterations per batch.
    NumIterations(u64),
}

/// Per-benchmark measurement configuration.
#[derive(Clone, Copy, Debug)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _measurement: measurement::WallTime,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup::new(self, name.into())
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&id, Config::default(), f);
        self
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    _criterion: &'a mut Criterion,
    name: String,
    config: Config,
    _marker: std::marker::PhantomData<M>,
}

impl<'a> BenchmarkGroup<'a, measurement::WallTime> {
    fn new(criterion: &'a mut Criterion, name: String) -> Self {
        BenchmarkGroup {
            _criterion: criterion,
            name,
            config: Config::default(),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.config.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget for each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.config, f);
        self
    }

    /// Ends the group (accepted for API compatibility; drop does the same).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, config: Config, mut f: F) {
    let mut bencher = Bencher { config, samples: Vec::new() };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<60} (no samples)");
        return;
    }
    let min = bencher.samples.iter().copied().min().unwrap();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{id:<60} min {:>12} mean {:>12} ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        bencher.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    config: Config,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    ///
    /// Warm-up runs until the warm-up budget is spent, then samples are
    /// collected until either `sample_size` samples exist or the
    /// measurement budget is exhausted (always at least one sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Times `routine` on fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_up_until = Instant::now() + self.config.warm_up_time;
        loop {
            let input = setup();
            black_box(routine(black_box(input)));
            if Instant::now() >= warm_up_until {
                break;
            }
        }
        let measure_until = Instant::now() + self.config.measurement_time;
        while self.samples.len() < self.config.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(black_box(input)));
            self.samples.push(start.elapsed());
            if Instant::now() >= measure_until && !self.samples.is_empty() {
                break;
            }
        }
    }
}

/// Declares a benchmark group function that runs each target in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_collect_samples_and_respect_budget() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(20));
        let mut calls = 0u64;
        g.bench_function("counter", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        assert!(calls > 0, "routine should have run");
    }

    #[test]
    fn iter_batched_times_only_routine() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("batched");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        g.bench_function("clone", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
