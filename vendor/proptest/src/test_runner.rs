//! The deterministic RNG behind every strategy.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic generator handed to [`crate::strategy::Strategy`]
/// implementations.
///
/// Each property gets a stream derived from its name (via FNV-1a), so
/// sibling properties explore different inputs while every run of the
/// suite is reproducible.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the stream for a named property.
    pub fn for_property(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { inner: StdRng::seed_from_u64(hash) }
    }

    /// Creates a stream from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.inner.gen_range(0..bound)
    }
}
