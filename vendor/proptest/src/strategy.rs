//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Mirrors proptest's trait of the same name minus shrinking: `generate`
/// replaces `new_tree` + simplification.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies can share a
    /// collection (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Rc::new(move |rng: &mut TestRng| self.generate(rng)) }
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed strategies of one value type.
#[derive(Clone, Debug)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick within total")
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// String literals act as regex strategies, as in real proptest.
///
/// # Panics
/// Generation panics if the literal is not a supported regex; prefer
/// [`crate::string::string_regex`] to surface the error as a `Result`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let strat = crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"));
        strat.generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ( $( ($($name:ident),+) ),+ ) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E), (A, B, C, D, E, F));
