//! Vendored stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the surface its property tests use:
//!
//! - the [`strategy::Strategy`] trait with `prop_map` and `boxed`,
//!   implemented for integer ranges, tuples, and regex string literals;
//! - [`collection::vec`] / [`collection::btree_set`], [`option::of`],
//!   [`string::string_regex`];
//! - the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_oneof!`] macros;
//! - [`prelude::ProptestConfig`] with `with_cases`.
//!
//! Differences from real proptest: generation is deterministic (fixed
//! seed per test body, perturbed per case), there is **no shrinking** —
//! a failing case panics with the generated values via the assert
//! message — and the regex subset covers character classes, groups,
//! alternation and bounded repetition (what the tests here use).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

pub mod test_runner;

/// Strategies for `String` generation from regular expressions.
pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Error from [`string_regex`] for patterns outside the supported
    /// subset.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// A strategy generating strings matched by a regular expression.
    #[derive(Clone, Debug)]
    pub struct RegexGeneratorStrategy<T> {
        pub(crate) ast: Node,
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    /// Parses `pattern` into a generator strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy<String>, Error> {
        let mut chars: Vec<char> = pattern.chars().collect();
        // A leading ^ / trailing $ anchor the whole string; generation is
        // always anchored, so they are simply dropped.
        if chars.first() == Some(&'^') {
            chars.remove(0);
        }
        if chars.last() == Some(&'$') {
            chars.pop();
        }
        let mut p = Parser { chars: &chars, pos: 0 };
        let node = p.parse_alternation()?;
        if p.pos != p.chars.len() {
            return Err(Error(format!("trailing input at byte {}", p.pos)));
        }
        Ok(RegexGeneratorStrategy { ast: node, _marker: std::marker::PhantomData })
    }

    impl Strategy for RegexGeneratorStrategy<String> {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            self.ast.generate(rng, &mut out);
            out
        }
    }

    /// Parsed regex node (generation-oriented, not matching-oriented).
    #[derive(Clone, Debug)]
    pub(crate) enum Node {
        /// Sequence of nodes.
        Concat(Vec<Node>),
        /// `a|b|c` alternatives.
        Alt(Vec<Node>),
        /// `x{min,max}` (also encodes `?`, `*`, `+` with max capped).
        Repeat(Box<Node>, u32, u32),
        /// Literal character.
        Char(char),
        /// Character class: inclusive ranges to choose from.
        Class(Vec<(char, char)>),
    }

    impl Node {
        fn generate(&self, rng: &mut TestRng, out: &mut String) {
            match self {
                Node::Concat(nodes) => {
                    for n in nodes {
                        n.generate(rng, out);
                    }
                }
                Node::Alt(alts) => {
                    let i = rng.below(alts.len() as u64) as usize;
                    alts[i].generate(rng, out);
                }
                Node::Repeat(node, min, max) => {
                    let n = *min + rng.below((*max - *min + 1) as u64) as u32;
                    for _ in 0..n {
                        node.generate(rng, out);
                    }
                }
                Node::Char(c) => out.push(*c),
                Node::Class(ranges) => {
                    // Weight ranges by size so every char is uniform.
                    let total: u64 =
                        ranges.iter().map(|(a, b)| (*b as u64) - (*a as u64) + 1).sum();
                    let mut pick = rng.below(total);
                    for (a, b) in ranges {
                        let size = (*b as u64) - (*a as u64) + 1;
                        if pick < size {
                            let code = *a as u32 + pick as u32;
                            // Skip the surrogate gap if a range crosses it.
                            out.push(char::from_u32(code).unwrap_or(*a));
                            return;
                        }
                        pick -= size;
                    }
                    unreachable!("class pick within total weight");
                }
            }
        }
    }

    struct Parser<'a> {
        chars: &'a [char],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn bump(&mut self) -> Option<char> {
            let c = self.peek();
            if c.is_some() {
                self.pos += 1;
            }
            c
        }

        fn parse_alternation(&mut self) -> Result<Node, Error> {
            let mut alts = vec![self.parse_concat()?];
            while self.peek() == Some('|') {
                self.bump();
                alts.push(self.parse_concat()?);
            }
            Ok(if alts.len() == 1 { alts.pop().unwrap() } else { Node::Alt(alts) })
        }

        fn parse_concat(&mut self) -> Result<Node, Error> {
            let mut nodes = Vec::new();
            while let Some(c) = self.peek() {
                if c == '|' || c == ')' {
                    break;
                }
                let atom = self.parse_atom()?;
                nodes.push(self.parse_repeat(atom)?);
            }
            Ok(if nodes.len() == 1 { nodes.pop().unwrap() } else { Node::Concat(nodes) })
        }

        fn parse_atom(&mut self) -> Result<Node, Error> {
            match self.bump() {
                Some('(') => {
                    // Non-capturing marker `?:` is irrelevant to generation.
                    if self.peek() == Some('?') {
                        self.bump();
                        if self.bump() != Some(':') {
                            return Err(Error("only (?: groups supported".into()));
                        }
                    }
                    let inner = self.parse_alternation()?;
                    if self.bump() != Some(')') {
                        return Err(Error("unclosed group".into()));
                    }
                    Ok(inner)
                }
                Some('[') => self.parse_class(),
                Some('\\') => Ok(Node::Char(self.parse_escape()?)),
                Some('.') => Ok(Node::Class(vec![(' ', '~')])),
                Some(c @ ('*' | '+' | '?' | '{')) => {
                    Err(Error(format!("dangling repetition operator {c:?}")))
                }
                Some(c) => Ok(Node::Char(c)),
                None => Err(Error("unexpected end of pattern".into())),
            }
        }

        fn parse_escape(&mut self) -> Result<char, Error> {
            match self.bump() {
                Some('t') => Ok('\t'),
                Some('n') => Ok('\n'),
                Some('r') => Ok('\r'),
                Some('0') => Ok('\0'),
                Some(
                    c @ ('\\' | '.' | '-' | '[' | ']' | '(' | ')' | '{' | '}' | '|' | '?' | '*'
                    | '+' | '^' | '$' | '/'),
                ) => Ok(c),
                Some(c) => Err(Error(format!("unsupported escape \\{c}"))),
                None => Err(Error("dangling escape".into())),
            }
        }

        fn parse_class(&mut self) -> Result<Node, Error> {
            if self.peek() == Some('^') {
                return Err(Error("negated classes unsupported".into()));
            }
            let mut ranges = Vec::new();
            loop {
                let lo = match self.bump() {
                    None => return Err(Error("unclosed character class".into())),
                    Some(']') => break,
                    Some('\\') => self.parse_escape()?,
                    Some(c) => c,
                };
                // `a-z` range, unless `-` is the literal last char.
                if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                    self.bump();
                    let hi = match self.bump() {
                        Some('\\') => self.parse_escape()?,
                        Some(c) => c,
                        None => return Err(Error("unclosed class range".into())),
                    };
                    if hi < lo {
                        return Err(Error(format!("invalid class range {lo}-{hi}")));
                    }
                    ranges.push((lo, hi));
                } else {
                    ranges.push((lo, lo));
                }
            }
            if ranges.is_empty() {
                return Err(Error("empty character class".into()));
            }
            Ok(Node::Class(ranges))
        }

        fn parse_repeat(&mut self, atom: Node) -> Result<Node, Error> {
            // Bound for unbounded operators: generated strings stay short.
            const UNBOUNDED: u32 = 8;
            match self.peek() {
                Some('?') => {
                    self.bump();
                    Ok(Node::Repeat(Box::new(atom), 0, 1))
                }
                Some('*') => {
                    self.bump();
                    Ok(Node::Repeat(Box::new(atom), 0, UNBOUNDED))
                }
                Some('+') => {
                    self.bump();
                    Ok(Node::Repeat(Box::new(atom), 1, UNBOUNDED))
                }
                Some('{') => {
                    self.bump();
                    let mut min = String::new();
                    while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        min.push(self.bump().unwrap());
                    }
                    let min: u32 = min.parse().map_err(|_| Error("bad {n} bound".into()))?;
                    let max = match self.bump() {
                        Some('}') => min,
                        Some(',') => {
                            let mut max = String::new();
                            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                                max.push(self.bump().unwrap());
                            }
                            if self.bump() != Some('}') {
                                return Err(Error("unclosed {m,n}".into()));
                            }
                            if max.is_empty() {
                                min + UNBOUNDED
                            } else {
                                max.parse().map_err(|_| Error("bad {m,n} bound".into()))?
                            }
                        }
                        _ => return Err(Error("unclosed {n}".into())),
                    };
                    if max < min {
                        return Err(Error("repetition max below min".into()));
                    }
                    Ok(Node::Repeat(Box::new(atom), min, max))
                }
                _ => Ok(atom),
            }
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `size` elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec size range must be non-empty");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s with target sizes drawn from a range.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates sets aiming for `size` elements (fewer if the element
    /// domain is too small to produce enough distinct values).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(size.start < size.end, "set size range must be non-empty");
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut set = BTreeSet::new();
            // Cap attempts so tiny domains cannot loop forever.
            for _ in 0..target.saturating_mul(4).max(16) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` about a quarter of the time.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S>(S);

    /// Wraps `inner`'s values in `Some`, interleaving `None`s.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Per-`proptest!`-block configuration.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the suite quick
            // while still exercising plenty of structure.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Runs each property function over `cases` generated inputs.
///
/// Accepts the same shape as real proptest:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, v in collection::vec(0u32..5, 0..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
///
/// Unlike real proptest there is no shrinking: the panic message of the
/// failing assertion carries the generated values instead.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                // Stable per-property stream: derived from the property
                // name so sibling tests explore different inputs.
                let mut rng = $crate::test_runner::TestRng::for_property(stringify!($name));
                for _case in 0..config.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng); )+
                    $body
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::prelude::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics with both values).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks among strategies, optionally weighted (`3 => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strategy:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
    ( $( $strategy:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_generation_matches_shape() {
        let strat = crate::string::string_regex("[a-z]{2}(-[A-Z]{2})?").unwrap();
        let mut rng = TestRng::for_property("regex");
        let mut saw_suffix = false;
        for _ in 0..200 {
            let s = Strategy::generate(&strat, &mut rng);
            let bytes: Vec<char> = s.chars().collect();
            assert!(bytes.len() == 2 || bytes.len() == 5, "bad len: {s:?}");
            assert!(bytes[0].is_ascii_lowercase() && bytes[1].is_ascii_lowercase());
            if bytes.len() == 5 {
                saw_suffix = true;
                assert_eq!(bytes[2], '-');
                assert!(bytes[3].is_ascii_uppercase() && bytes[4].is_ascii_uppercase());
            }
        }
        assert!(saw_suffix, "optional group should sometimes appear");
    }

    #[test]
    fn str_literals_are_strategies() {
        let mut rng = TestRng::for_property("lit");
        for _ in 0..50 {
            let s = Strategy::generate(&"[0-9]{3}", &mut rng);
            assert_eq!(s.len(), 3);
            assert!(s.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let strat = (0u32..10, 5u32..6).prop_map(|(a, b)| a + b);
        let mut rng = TestRng::for_property("compose");
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn oneof_honours_weights_roughly() {
        let strat = prop_oneof![9 => 0u32..1, 1 => 100u32..101];
        let mut rng = TestRng::for_property("weights");
        let rare = (0..1000).filter(|_| Strategy::generate(&strat, &mut rng) == 100).count();
        assert!((30..300).contains(&rare), "rare arm hit {rare}/1000");
    }

    proptest! {
        #[test]
        fn vec_sizes_respect_range(v in crate::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn sets_are_sets(s in crate::collection::btree_set(0u32..64, 0..40)) {
            prop_assert!(s.len() < 40);
        }

        #[test]
        fn options_mix(o in crate::option::of(1u32..2)) {
            if let Some(v) = o {
                prop_assert_eq!(v, 1);
            }
        }
    }
}
