//! The live write path: a durable store that accepts writes while
//! serving queries, survives crashes, and compacts into frozen
//! generations.
//!
//! A `LiveGraphStore` layers a mutable delta + tombstone overlay over a
//! frozen (flat-slab) generation on disk and records every accepted
//! insert/remove in a write-ahead log *before* applying it. Opening the
//! directory replays the log over the newest generation, so a process
//! that dies mid-stream — simulated here by dropping the store without
//! compacting — recovers to exactly the last logged write. `compact()`
//! folds the overlay into the next `gen-NNNNNN.hexsnap` generation and
//! truncates the log.
//!
//! Run with: `cargo run --example live_updates`

use hex_query::DatasetQuery;
use hexastore::LiveGraphStore;
use rdf_model::{Term, Triple};

const EX: &str = "http://example.org/";

fn iri(local: &str) -> Term {
    Term::iri(format!("{EX}{local}"))
}

fn triple(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(iri(s), iri(p), iri(o))
}

fn advisees(live: &LiveGraphStore) -> Vec<String> {
    let query = format!("SELECT ?student WHERE {{ ?student <{EX}advisor> ?prof . }}");
    let plan = live.dataset().prepare(&query).expect("query compiles");
    let mut rows: Vec<String> = plan.solutions().map(|row| row[0].to_string()).collect();
    rows.sort();
    rows
}

fn main() {
    let dir = std::env::temp_dir().join(format!("hexlive_example_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // 1. Open an empty live store and write through the WAL.
    {
        let mut live = LiveGraphStore::open(&dir).expect("open live store");
        println!("=== fresh store at {} ===", dir.display());
        for (s, p, o) in
            [("ID3", "advisor", "ID2"), ("ID4", "advisor", "ID1"), ("ID2", "worksFor", "MIT")]
        {
            live.insert(&triple(s, p, o)).expect("logged insert");
        }
        live.remove(&triple("ID4", "advisor", "ID1")).expect("logged remove");
        live.sync().expect("WAL fsync");
        println!(
            "wrote 3 inserts + 1 remove: {} triples live, WAL holds {} bytes",
            live.len(),
            live.wal_bytes()
        );
        println!("advisees while writing: {:?}", advisees(&live));
        // 2. "Crash": drop the store here without compacting. The WAL is
        //    the only durable record of the writes above.
    }

    // 3. Recovery replays the log over the newest frozen generation.
    let mut live = LiveGraphStore::recover(&dir).expect("recover from WAL");
    println!("=== recovered (generation {}) ===", live.generation());
    println!("{} triples survive the crash", live.len());
    assert!(live.contains(&triple("ID3", "advisor", "ID2")));
    assert!(!live.contains(&triple("ID4", "advisor", "ID1")), "the remove was logged too");
    println!("advisees after recovery: {:?}", advisees(&live));

    // 4. Compaction folds the overlay into the next frozen generation
    //    and truncates the log; queries read the new flat slabs.
    live.insert(&triple("ID5", "advisor", "ID2")).expect("logged insert");
    live.compact().expect("compact into a new generation");
    println!("=== compacted (generation {}) ===", live.generation());
    println!("WAL truncated to {} bytes; {} triples frozen", live.wal_bytes(), live.len());
    drop(live);

    // 5. Reopening lands on the compacted generation with nothing to replay.
    let reopened = LiveGraphStore::open(&dir).expect("reopen");
    println!("=== reopened (generation {}) ===", reopened.generation());
    println!("advisees from the frozen generation: {:?}", advisees(&reopened));
    assert_eq!(reopened.len(), 3);

    std::fs::remove_dir_all(&dir).ok();
}
