//! Quickstart: the paper's Figure 1 worked example, end to end.
//!
//! Loads the sample academic RDF data of Figure 1(a), then runs the two
//! SQL queries of Figure 1(b) — both *not property-bound* — through the
//! SPARQL-like query engine, plus a few direct pattern probes that show
//! off the six access paths.
//!
//! Run with: `cargo run --example quickstart`

use hex_query::execute;
use hexastore::GraphStore;
use rdf_model::{Term, TermPattern, TriplePattern};

const EX: &str = "http://example.org/";

fn main() {
    let mut g = GraphStore::new();

    // Figure 1(a): academic information about four people.
    let doc = format!(
        r#"
<{EX}ID1> <{EX}type> <{EX}FullProfessor> .
<{EX}ID1> <{EX}teacherOf> "AI" .
<{EX}ID1> <{EX}bachelorFrom> "MIT" .
<{EX}ID1> <{EX}mastersFrom> "Cambridge" .
<{EX}ID1> <{EX}phdFrom> "Yale" .
<{EX}ID2> <{EX}type> <{EX}AssocProfessor> .
<{EX}ID2> <{EX}worksFor> "MIT" .
<{EX}ID2> <{EX}teacherOf> "DataBases" .
<{EX}ID2> <{EX}bachelorsFrom> "Yale" .
<{EX}ID2> <{EX}phdFrom> "Stanford" .
<{EX}ID3> <{EX}type> <{EX}GradStudent> .
<{EX}ID3> <{EX}advisor> <{EX}ID2> .
<{EX}ID3> <{EX}teachingAssist> "AI" .
<{EX}ID3> <{EX}bachelorsFrom> "Stanford" .
<{EX}ID3> <{EX}mastersFrom> "Princeton" .
<{EX}ID4> <{EX}type> <{EX}GradStudent> .
<{EX}ID4> <{EX}advisor> <{EX}ID1> .
<{EX}ID4> <{EX}takesCourse> "DataBases" .
<{EX}ID4> <{EX}bachelorsFrom> "Columbia" .
"#
    );
    let added = g.load_ntriples(&doc).expect("well-formed N-Triples");
    println!("loaded {added} triples; store reports {}", g.len());

    // Figure 1(b), upper query: what relationship does ID2 have to MIT?
    let rs = execute(&g, &format!(r#"SELECT ?property WHERE {{ <{EX}ID2> ?property "MIT" . }}"#))
        .unwrap();
    println!("\nQ1: how is ID2 related to MIT?");
    print!("{}", rs.to_tsv());

    // Figure 1(b), lower query: who has the same relationship to Stanford
    // as ID1 has to Yale?
    let rs = execute(
        &g,
        &format!(
            r#"SELECT ?b WHERE {{
                <{EX}ID1> ?prop "Yale" .
                ?b ?prop "Stanford" .
            }}"#
        ),
    )
    .unwrap();
    println!("\nQ2: same relationship to Stanford as ID1 has to Yale?");
    print!("{}", rs.to_tsv());

    // §4.1's ops example: the property vector of object 'MIT' holds
    // bachelorFrom and worksFor. An object-bound probe, no property scan.
    println!("\nHow is anyone related to MIT? (ops probe)");
    for t in g.matching(&TriplePattern::new(
        TermPattern::var("who"),
        TermPattern::var("how"),
        Term::literal("MIT"),
    )) {
        println!("  {t}");
    }

    // Space accounting: the paper's ≤5× worst-case bound, on real data.
    let stats = g.store().space_stats();
    println!(
        "\nspace: {} triples, {} key entries ({}h + {}v + {}l), blowup {:.2}x (bound 5x)",
        stats.triples,
        stats.total_entries(),
        stats.header_entries,
        stats.vector_entries,
        stats.list_entries,
        stats.blowup()
    );
}
