//! The LUBM evaluation in miniature: generate an academic dataset, load it
//! into all four stores, run the paper's five LUBM queries on each, and
//! print response times side by side — a one-process preview of Figures
//! 10–14.
//!
//! Run with: `cargo run --release --example academic_queries`

use hex_bench_queries::lubm::{self, LubmIds};
use hex_bench_queries::Suite;
use hex_datagen::lubm::{generate, LubmConfig};
use hexastore::TripleStore;
use std::time::Instant;

fn time<R>(f: impl Fn() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    let first = start.elapsed().as_secs_f64();
    // One more run, take the faster (warm) one.
    let start = Instant::now();
    let r2 = f();
    let second = start.elapsed().as_secs_f64();
    drop(r);
    (r2, first.min(second))
}

fn main() {
    let cfg = LubmConfig::with_universities(2);
    let triples = generate(&cfg);
    println!(
        "generated {} triples over {} universities ({} predicates)",
        triples.len(),
        cfg.universities,
        hex_datagen::PREDICATES.len()
    );

    let suite = Suite::build(&triples);
    let ids = LubmIds::resolve(&suite.dict).expect("generated data defines all query terms");
    println!(
        "loaded into Hexastore ({} B), COVP1 ({} B), COVP2 ({} B)\n",
        suite.hexastore.heap_bytes(),
        suite.covp1.heap_bytes(),
        suite.covp2.heap_bytes()
    );

    println!("{:<6} {:>14} {:>14} {:>14}  result", "query", "Hexastore(s)", "COVP1(s)", "COVP2(s)");

    let (r1, t_hex) = time(|| lubm::lq1_hexastore(&suite.hexastore, &ids));
    let (_, t_c1) = time(|| lubm::lq1_covp1(&suite.covp1, &ids));
    let (_, t_c2) = time(|| lubm::lq1_covp2(&suite.covp2, &ids));
    println!(
        "LQ1    {t_hex:>14.6} {t_c1:>14.6} {t_c2:>14.6}  {} people related to Course10",
        r1.len()
    );

    let (r2, t_hex) = time(|| lubm::lq2_hexastore(&suite.hexastore, &ids));
    let (_, t_c1) = time(|| lubm::lq2_covp1(&suite.covp1, &ids));
    let (_, t_c2) = time(|| lubm::lq2_covp2(&suite.covp2, &ids));
    println!("LQ2    {t_hex:>14.6} {t_c1:>14.6} {t_c2:>14.6}  {} related to University0", r2.len());

    let (r3, t_hex) = time(|| lubm::lq3_hexastore(&suite.hexastore, &ids));
    let (_, t_c1) = time(|| lubm::lq3_covp1(&suite.covp1, &ids));
    let (_, t_c2) = time(|| lubm::lq3_covp2(&suite.covp2, &ids));
    println!(
        "LQ3    {t_hex:>14.6} {t_c1:>14.6} {t_c2:>14.6}  {} facts about AssocProfessor10",
        r3.len()
    );

    let (r4, t_hex) = time(|| lubm::lq4_hexastore(&suite.hexastore, &ids));
    let (_, t_c1) = time(|| lubm::lq4_covp1(&suite.covp1, &ids));
    let (_, t_c2) = time(|| lubm::lq4_covp2(&suite.covp2, &ids));
    println!(
        "LQ4    {t_hex:>14.6} {t_c1:>14.6} {t_c2:>14.6}  {} courses taught, grouped",
        r4.len()
    );

    let (r5, t_hex) = time(|| lubm::lq5_hexastore(&suite.hexastore, &ids));
    let (_, t_c1) = time(|| lubm::lq5_covp1(&suite.covp1, &ids));
    let (_, t_c2) = time(|| lubm::lq5_covp2(&suite.covp2, &ids));
    println!(
        "LQ5    {t_hex:>14.6} {t_c1:>14.6} {t_c2:>14.6}  {} universities with degree holders",
        r5.len()
    );

    // Show a slice of LQ4's grouped answer with decoded names.
    println!("\nLQ4 sample (first course):");
    if let Some((course, related)) = r4.first() {
        println!("  course {}", suite.dict.decode(*course).unwrap());
        for (s, p) in related.iter().take(5) {
            println!(
                "    {} via {}",
                suite.dict.decode(*s).unwrap(),
                suite.dict.decode(*p).unwrap()
            );
        }
        if related.len() > 5 {
            println!("    … and {} more", related.len() - 5);
        }
    }
}
