//! Workload-based index selection — the paper's §6 future-work item,
//! implemented in `hexastore::advisor`.
//!
//! "Some indices may not contribute to query efficiency based on a given
//! workload. For example, the ops index has been seldom used in our
//! experiments."
//!
//! This example profiles two workloads over a LUBM-like dataset — the
//! paper's twelve-query mix, and a purely property-bound (COVP-shaped)
//! mix — and reports which of the six indices each actually needs and the
//! memory dropping the rest would save. Dataset statistics from
//! `hexastore::stats` round out the picture.
//!
//! Run with: `cargo run --release --example index_advisor`

use hex_bench_queries::lubm::LubmIds;
use hex_bench_queries::Suite;
use hex_datagen::lubm::{generate, LubmConfig};
use hexastore::advisor::{estimate_savings, recommend, IndexKind, WorkloadProfile};
use hexastore::{DatasetStats, IdPattern, TripleStore};

fn main() {
    let triples = generate(&LubmConfig::with_universities(1));
    let suite = Suite::build(&triples);
    let ids = LubmIds::resolve(&suite.dict).expect("generated data defines all query terms");
    let h = &suite.hexastore;

    println!("dataset: {} triples, full sextuple index = {:.1} MB", h.len(), mb(h.heap_bytes()));
    let stats = DatasetStats::compute(h);
    println!(
        "  distinct s/p/o: {:?}; mean out-degree {:.1}; {:.0}% of (s,p) pairs multi-valued",
        stats.distinct,
        stats.mean_out_degree,
        stats.multi_valued_sp_fraction * 100.0
    );
    println!(
        "  property skew (Gini): {:.2}; top-3 properties: {:?}",
        stats.property_skew(),
        stats
            .top_properties(3)
            .iter()
            .map(|&p| suite.dict.decode(p).unwrap().to_string())
            .collect::<Vec<_>>()
    );

    // Workload 1: the access shapes the paper's twelve queries touch.
    let paper_workload = vec![
        IdPattern::po(ids.p_type, ids.class_university), // pos selections (BQ1-7, LQ5)
        IdPattern::sp(ids.assoc_prof10, ids.p_teacher_of), // spo probes (BQ2, LQ4)
        IdPattern::s(ids.assoc_prof10),                  // subject divisions (LQ3)
        IdPattern::o(ids.course10),                      // object divisions (LQ1, LQ2, LQ4)
        IdPattern::p(ids.p_teacher_of),                  // property divisions (path queries)
    ];
    report("paper's twelve-query mix", h, &paper_workload);

    // Workload 2: a COVP-shaped, purely property-bound application.
    let covp_workload = vec![
        IdPattern::p(ids.p_type),
        IdPattern::sp(ids.assoc_prof10, ids.p_type),
        IdPattern::po(ids.p_type, ids.class_university),
    ];
    report("property-bound (COVP-shaped) mix", h, &covp_workload);

    // Close the loop: build the recommended partial store and run a query
    // through `hex_query::prepare` — the planner reads `capabilities()`
    // and routes every step through a surviving index, no hand-picked
    // plan orders needed.
    let keep = recommend(&WorkloadProfile::from_patterns(&paper_workload));
    let partial = hexastore::PartialHexastore::from_triples(keep, suite.triples.iter().copied());
    let query = format!(
        "SELECT ?x WHERE {{ ?x {} {} . }} LIMIT 3",
        hex_datagen::lubm::Vocab::predicate("type"),
        hex_datagen::lubm::Vocab::class("University"),
    );
    let plan = hex_query::prepare_on(&partial, &suite.dict, &query)
        .expect("query compiles against the suite dictionary");
    println!("\nauto-planned query on the reduced store ({} of 6 orderings):", keep.len());
    print!("{}", plan.explain());
    for row in plan.solutions() {
        println!("  -> {}", row[0]);
    }
}

fn report(name: &str, h: &hexastore::Hexastore, workload: &[IdPattern]) {
    let profile = WorkloadProfile::from_patterns(workload);
    let keep = recommend(&profile);
    let saved = estimate_savings(h, keep);
    println!("\nworkload: {name}");
    println!("  shapes used: {:?}", profile.used_shapes());
    println!(
        "  indices needed: {:?} ({} of 6); ops needed: {}",
        keep,
        keep.len(),
        keep.contains(IndexKind::Ops)
    );
    println!(
        "  dropping the rest saves ≈ {:.1} MB of {:.1} MB ({:.0}%)",
        mb(saved),
        mb(h.heap_bytes()),
        100.0 * saved as f64 / h.heap_bytes() as f64
    );
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}
