//! The motivation of §3: "one may query for relationships between
//! resources without specifying those relationships (consider … the
//! proliferation of social networks)."
//!
//! Builds a small social graph, then answers relationship-discovery
//! queries that bind no property — plus a path/transitive-closure query
//! over `knows` edges (§4.3) — and contrasts the index work a Hexastore
//! does against what a property-partitioned store would have to do.
//!
//! Run with: `cargo run --example social_network`

use hex_dict::Id;
use hex_query::{execute, path};
use hexastore::GraphStore;
use rdf_model::{Term, Triple};

const EX: &str = "http://social.example.org/";

fn person(name: &str) -> Term {
    Term::iri(format!("{EX}person/{name}"))
}

fn rel(name: &str) -> Term {
    Term::iri(format!("{EX}rel/{name}"))
}

fn main() {
    let mut g = GraphStore::new();
    let edges: [(&str, &str, &str); 14] = [
        ("alice", "knows", "bob"),
        ("alice", "worksWith", "carol"),
        ("alice", "mentors", "dave"),
        ("bob", "knows", "carol"),
        ("bob", "marriedTo", "erin"),
        ("carol", "knows", "dave"),
        ("carol", "reportsTo", "frank"),
        ("dave", "knows", "erin"),
        ("erin", "mentors", "alice"),
        ("frank", "knows", "alice"),
        ("frank", "invests_in", "startup"),
        ("grace", "follows", "alice"),
        ("grace", "knows", "heidi"),
        ("heidi", "worksWith", "frank"),
    ];
    for (s, p, o) in edges {
        g.insert(&Triple::new(person(s), rel(p), person(o)));
    }
    println!(
        "social graph: {} edges, {} relationship kinds\n",
        g.len(),
        g.store().property_count()
    );

    // Relationship discovery: how are two people connected, if at all?
    // Property is the unknown — an (s, ?, o) probe on the sop index.
    for (a, b) in [("alice", "bob"), ("erin", "alice"), ("alice", "erin")] {
        let rs = execute(
            &g,
            &format!(r#"SELECT ?how WHERE {{ <{EX}person/{a}> ?how <{EX}person/{b}> . }}"#),
        )
        .unwrap();
        let hows: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
        println!(
            "{a} → {b}: {}",
            if hows.is_empty() { "no direct link".into() } else { hows.join(", ") }
        );
    }

    // Who is connected to alice in any direction, by any relationship?
    // One osp probe + one spo probe; a vertically-partitioned store would
    // query all relationship tables and union (§2.2.3).
    println!("\neveryone connected to alice (any property, any direction):");
    let alice = g.id_of(&person("alice")).unwrap();
    let inbound: Vec<(Id, Vec<Id>)> =
        g.store().osp_vector(alice).map(|(s, props)| (s, props.to_vec())).collect();
    for (s, props) in inbound {
        for p in props {
            println!(
                "  {} --{}--> alice",
                g.dict().decode(s).unwrap(),
                g.dict().decode(p).unwrap()
            );
        }
    }
    let outbound: Vec<(Id, Vec<Id>)> =
        g.store().spo_vector(alice).map(|(p, objs)| (p, objs.to_vec())).collect();
    for (p, objs) in outbound {
        for o in objs {
            println!(
                "  alice --{}--> {}",
                g.dict().decode(p).unwrap(),
                g.dict().decode(o).unwrap()
            );
        }
    }

    // Path expressions (§4.3): friends-of-friends and the transitive
    // closure of `knows`.
    let knows = g.id_of(&rel("knows")).unwrap();
    let fof = path::follow_path(g.store(), &[knows, knows]);
    println!(
        "\nfriends-of-friends endpoints (knows/knows): {:?} — {} merge join, {} sort-merge",
        fof.ends.iter().map(|&e| g.dict().decode(e).unwrap().to_string()).collect::<Vec<_>>(),
        fof.stats.merge_joins,
        fof.stats.sort_merge_joins,
    );
    let reach = path::transitive_closure(g.store(), alice, knows);
    println!(
        "alice's knows-closure: {:?}",
        reach.iter().map(|&e| g.dict().decode(e).unwrap().to_string()).collect::<Vec<_>>()
    );
}
