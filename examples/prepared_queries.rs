//! The streaming query surface: `prepare` → `explain` → `Solutions`.
//!
//! Prepares queries instead of running them in one shot: the returned
//! `Plan` shows its cost-annotated, index-aware join order (`explain`),
//! and streams rows lazily (`solutions`), so ASK stops at the first
//! answer and LIMIT after `offset + limit` rows. The same `prepare`
//! surface now runs on *every* string-level facade — the mutable
//! `GraphStore`, the read-only `FrozenGraphStore` it freezes into, and
//! an advisor-reduced `PartialGraphStore` — and can refine its join
//! order with dataset statistics (`prepare_with_stats`).
//!
//! Run with: `cargo run --example prepared_queries`

use hex_query::DatasetQuery;
use hexastore::advisor::{recommend, WorkloadProfile};
use hexastore::{Dataset, GraphStore, IdPattern, PartialHexastore, TripleStore};

const EX: &str = "http://example.org/";

fn main() {
    // The paper's Figure 1 academic micro-graph.
    let mut g = GraphStore::new();
    g.load_ntriples(&format!(
        r#"
<{EX}ID1> <{EX}type> <{EX}FullProfessor> .
<{EX}ID1> <{EX}teacherOf> "AI" .
<{EX}ID1> <{EX}bachelorFrom> "MIT" .
<{EX}ID1> <{EX}phdFrom> "Yale" .
<{EX}ID2> <{EX}type> <{EX}AssocProfessor> .
<{EX}ID2> <{EX}worksFor> "MIT" .
<{EX}ID2> <{EX}teacherOf> "DataBases" .
<{EX}ID2> <{EX}phdFrom> "Stanford" .
<{EX}ID3> <{EX}type> <{EX}GradStudent> .
<{EX}ID3> <{EX}advisor> <{EX}ID2> .
<{EX}ID3> <{EX}teachingAssist> "AI" .
<{EX}ID4> <{EX}type> <{EX}GradStudent> .
<{EX}ID4> <{EX}advisor> <{EX}ID1> .
<{EX}ID4> <{EX}takesCourse> "DataBases" .
"#
    ))
    .expect("well-formed N-Triples");

    // 1. Prepare once, inspect the plan, then stream the solutions.
    let query = format!(
        r#"SELECT ?student ?prof WHERE {{
            ?student <{EX}type> <{EX}GradStudent> .
            ?student <{EX}advisor> ?prof .
            FILTER(?prof != <{EX}ID1>)
        }}"#
    );
    let plan = g.prepare(&query).expect("query compiles");
    println!("=== plan on the full Hexastore ===");
    print!("{}", plan.explain());
    println!("--- solutions (streamed) ---");
    for row in plan.solutions() {
        let cells: Vec<String> = row.iter().map(ToString::to_string).collect();
        println!("  {}", cells.join("  "));
    }

    // 2. The statistics mode refines join estimates by bound-variable
    //    fan-out; explain() shows the refined per-step costs.
    let stats = g.stats();
    let refined = g.prepare_with_stats(&query, Some(&stats)).expect("query compiles");
    println!("\n=== same query, statistics-driven planner ===");
    print!("{}", refined.explain());

    // 3. The identical surface runs on the frozen (read-only, slab-backed)
    //    facade — freeze carries the dictionary along.
    let frozen = g.freeze();
    let ask = format!("ASK {{ ?who <{EX}worksFor> \"MIT\" . }}");
    println!("\n=== {ask} on the FrozenGraphStore ===");
    println!("answer: {}", frozen.ask(&ask).expect("query compiles"));

    // 4. And on a reduced store: profile the workload, keep only the
    //    recommended orderings, and let the planner route every step
    //    through a surviving index.
    let workload = [
        IdPattern::po(
            g.id_of(&rdf_model::Term::iri(format!("{EX}type"))).unwrap(),
            g.id_of(&rdf_model::Term::iri(format!("{EX}GradStudent"))).unwrap(),
        ),
        IdPattern::s(g.id_of(&rdf_model::Term::iri(format!("{EX}ID3"))).unwrap()),
    ];
    let keep = recommend(&WorkloadProfile::from_patterns(&workload));
    let partial = Dataset::from_parts(
        g.dict().clone(),
        PartialHexastore::from_triples(keep, g.store().matching(IdPattern::ALL)),
    );
    println!(
        "\n=== same surface on a PartialGraphStore keeping {:?} ({} of 6 orderings) ===",
        partial.store().kept(),
        partial.store().kept().len()
    );
    let reduced_query = format!(
        r#"SELECT ?s WHERE {{
            ?s <{EX}type> <{EX}GradStudent> .
            ?s <{EX}teachingAssist> "AI" .
        }}"#
    );
    let plan = partial.prepare(&reduced_query).expect("query compiles");
    print!("{}", plan.explain());
    println!("--- solutions ---");
    for row in plan.solutions() {
        println!("  {}", row[0]);
    }
    println!(
        "\nmemory: partial {} B vs full {} B",
        partial.store().heap_bytes(),
        g.store().heap_bytes()
    );
}
