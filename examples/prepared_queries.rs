//! The streaming query surface: `prepare` → `explain` → `Solutions`.
//!
//! Prepares queries instead of running them in one shot: the returned
//! `Plan` shows its cost-annotated, index-aware join order (`explain`),
//! and streams rows lazily (`solutions`), so ASK stops at the first
//! answer and LIMIT after `offset + limit` rows — on the full sextuple
//! store *and* on an advisor-reduced `PartialHexastore`, whose
//! `capabilities()` the planner consults automatically.
//!
//! Run with: `cargo run --example prepared_queries`

use hex_query::prepare_on;
use hexastore::advisor::{recommend, WorkloadProfile};
use hexastore::{GraphStore, IdPattern, PartialHexastore, TripleStore};

const EX: &str = "http://example.org/";

fn main() {
    // The paper's Figure 1 academic micro-graph.
    let mut g = GraphStore::new();
    g.load_ntriples(&format!(
        r#"
<{EX}ID1> <{EX}type> <{EX}FullProfessor> .
<{EX}ID1> <{EX}teacherOf> "AI" .
<{EX}ID1> <{EX}bachelorFrom> "MIT" .
<{EX}ID1> <{EX}phdFrom> "Yale" .
<{EX}ID2> <{EX}type> <{EX}AssocProfessor> .
<{EX}ID2> <{EX}worksFor> "MIT" .
<{EX}ID2> <{EX}teacherOf> "DataBases" .
<{EX}ID2> <{EX}phdFrom> "Stanford" .
<{EX}ID3> <{EX}type> <{EX}GradStudent> .
<{EX}ID3> <{EX}advisor> <{EX}ID2> .
<{EX}ID3> <{EX}teachingAssist> "AI" .
<{EX}ID4> <{EX}type> <{EX}GradStudent> .
<{EX}ID4> <{EX}advisor> <{EX}ID1> .
<{EX}ID4> <{EX}takesCourse> "DataBases" .
"#
    ))
    .expect("well-formed N-Triples");

    // 1. Prepare once, inspect the plan, then stream the solutions.
    let query = format!(
        r#"SELECT ?student ?prof WHERE {{
            ?student <{EX}type> <{EX}GradStudent> .
            ?student <{EX}advisor> ?prof .
            FILTER(?prof != <{EX}ID1>)
        }}"#
    );
    let plan = prepare_on(g.store(), g.dict(), &query).expect("query compiles");
    println!("=== plan on the full Hexastore ===");
    print!("{}", plan.explain());
    println!("--- solutions (streamed) ---");
    for row in plan.solutions() {
        let cells: Vec<String> = row.iter().map(ToString::to_string).collect();
        println!("  {}", cells.join("  "));
    }

    // 2. ASK terminates at the first matching row.
    let ask = format!("ASK {{ ?who <{EX}worksFor> \"MIT\" . }}");
    let plan = prepare_on(g.store(), g.dict(), &ask).expect("query compiles");
    println!("\n=== {ask} ===");
    println!("answer: {}", plan.solutions().next().is_some());

    // 3. The same surface plans automatically on a reduced store: profile
    //    the workload, keep only the recommended orderings, and let the
    //    planner route every step through a surviving index.
    let workload = [
        IdPattern::po(
            g.id_of(&rdf_model::Term::iri(format!("{EX}type"))).unwrap(),
            g.id_of(&rdf_model::Term::iri(format!("{EX}GradStudent"))).unwrap(),
        ),
        IdPattern::s(g.id_of(&rdf_model::Term::iri(format!("{EX}ID3"))).unwrap()),
    ];
    let keep = recommend(&WorkloadProfile::from_patterns(&workload));
    let partial = PartialHexastore::from_triples(keep, g.store().matching(IdPattern::ALL));
    println!(
        "\n=== same query on a PartialHexastore keeping {:?} ({} of 6 orderings) ===",
        partial.kept(),
        partial.kept().len()
    );
    let reduced_query = format!(
        r#"SELECT ?s WHERE {{
            ?s <{EX}type> <{EX}GradStudent> .
            ?s <{EX}teachingAssist> "AI" .
        }}"#
    );
    let plan = prepare_on(&partial, g.dict(), &reduced_query).expect("query compiles");
    print!("{}", plan.explain());
    println!("--- solutions ---");
    for row in plan.solutions() {
        println!("  {}", row[0]);
    }
    println!("\nmemory: partial {} B vs full {} B", partial.heap_bytes(), g.store().heap_bytes());
}
