//! Persist a `GraphStore` to JSON and rebuild it through the bulk loader.
//!
//! The paper's prototype is in-memory; §7 names a disk-based Hexastore as
//! future work. The `serde`-gated snapshot is the middle ground: store the
//! dictionary terms and encoded triples once (near triples-table size) and
//! reconstruct the sextuple redundancy on load.
//!
//! Run with: `cargo run --features serde --example snapshot_persistence`

use hexastore::snapshot::Snapshot;
use hexastore::GraphStore;
use rdf_model::{Term, TermPattern, TriplePattern};

fn main() {
    let mut g = GraphStore::new();
    g.load_ntriples(
        r#"
<http://ex/ID1> <http://ex/advisor> <http://ex/ID2> .
<http://ex/ID2> <http://ex/worksFor> "MIT" .
<http://ex/ID3> <http://ex/advisor> <http://ex/ID2> .
"#,
    )
    .expect("valid N-Triples");
    println!("loaded {} triples", g.len());

    let snap = Snapshot::capture(&g);
    let json = serde_json::to_string(&snap).expect("snapshot serializes");
    println!("snapshot is {} bytes of JSON", json.len());

    let path = std::env::temp_dir().join("hexastore_snapshot_demo.json");
    std::fs::write(&path, &json).expect("write snapshot");
    let text = std::fs::read_to_string(&path).expect("read snapshot");
    std::fs::remove_file(&path).ok();

    let restored: Snapshot = serde_json::from_str(&text).expect("snapshot parses");
    let g2 = restored.restore();
    println!("restored {} triples from {}", g2.len(), path.display());

    let pat = TriplePattern::new(
        TermPattern::var("student"),
        TermPattern::Bound(Term::iri("http://ex/advisor")),
        TermPattern::Bound(Term::iri("http://ex/ID2")),
    );
    let (before, after) = (g.matching(&pat), g2.matching(&pat));
    assert_eq!(before, after, "restored store answers identically");
    println!("advisor query agrees before/after: {} students of ID2", after.len());
}
