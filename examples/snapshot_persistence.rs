//! Persist a `GraphStore` two ways and compare the cold-start paths:
//!
//! 1. the legacy serde shim — JSON text, parsed back and rebuilt through
//!    the bulk loader (`Snapshot::into_restore`, move-only);
//! 2. the binary `hexsnap` format through the `Dataset` facade —
//!    `graph.freeze().save(path)` writes a columnar file whose slab
//!    sections open straight into a query-ready `FrozenGraphStore`
//!    (`FrozenGraphStore::load`), no index rebuild and no id-level code.
//!
//! With the `disk` feature the demo adds the format-v2 extras: saving
//! the slabs varint-delta compressed (`Compression::VarintDelta`) and
//! opening an uncompressed snapshot through the `hex-disk` mmap path,
//! where the slab columns stay on disk and page faults do the reading.
//!
//! Run with: `cargo run --features serde --example snapshot_persistence`
//! (or `--features serde,disk` for the compressed + mmap paths).

use hexastore::snapshot::Snapshot;
use hexastore::{FrozenGraphStore, GraphStore};
use rdf_model::{Term, TermPattern, TriplePattern};

fn main() {
    let mut g = GraphStore::new();
    g.load_ntriples(
        r#"
<http://ex/ID1> <http://ex/advisor> <http://ex/ID2> .
<http://ex/ID2> <http://ex/worksFor> "MIT" .
<http://ex/ID3> <http://ex/advisor> <http://ex/ID2> .
"#,
    )
    .expect("valid N-Triples");
    println!("loaded {} triples", g.len());

    let pat = TriplePattern::new(
        TermPattern::var("student"),
        TermPattern::Bound(Term::iri("http://ex/advisor")),
        TermPattern::Bound(Term::iri("http://ex/ID2")),
    );
    let before = g.matching(&pat);

    // --- Path 1: JSON text via the serde shim, rebuilt on load. -------
    let snap = Snapshot::capture(&g);
    let json = serde_json::to_string(&snap).expect("snapshot serializes");
    println!("JSON snapshot is {} bytes of text", json.len());
    let json_path = std::env::temp_dir().join("hexastore_snapshot_demo.json");
    std::fs::write(&json_path, &json).expect("write snapshot");
    let text = std::fs::read_to_string(&json_path).expect("read snapshot");
    std::fs::remove_file(&json_path).ok();
    let parsed: Snapshot = serde_json::from_str(&text).expect("snapshot parses");
    // into_restore is move-only: terms and triples go straight to the
    // dictionary and the bulk loader, no clone.
    let from_json = parsed.into_restore();
    assert_eq!(from_json.matching(&pat), before, "JSON restore answers identically");
    println!("JSON restore rebuilt {} triples (six indices re-sorted)", from_json.len());

    // --- Path 2: binary hexsnap through the facade, zero rebuild. -----
    let bin_path = std::env::temp_dir().join("hexastore_snapshot_demo.hexsnap");
    g.freeze().save(&bin_path).expect("write binary snapshot");
    let bytes = std::fs::metadata(&bin_path).expect("stat snapshot").len();
    println!("binary snapshot is {bytes} bytes (dictionary arena + triple column + slabs)");

    let frozen = FrozenGraphStore::load(&bin_path).expect("open binary snapshot");
    std::fs::remove_file(&bin_path).ok();
    println!("frozen open: {} triples query-ready without rebuilding indices", frozen.len());

    // The frozen dataset answers the same string-level query through its
    // slab columns — no manual dictionary plumbing.
    assert_eq!(frozen.matching(&pat), before);
    println!("advisor query agrees across all paths: {} students of ID2", before.len());

    // Need updates again? Thaw back to a mutable GraphStore, loss-free.
    let mut thawed = frozen.thaw();
    assert!(thawed.insert(&rdf_model::Triple::new(
        Term::iri("http://ex/ID4"),
        Term::iri("http://ex/advisor"),
        Term::iri("http://ex/ID2"),
    )));
    println!("thawed store accepts updates again ({} triples)", thawed.len());

    // --- Path 3 (feature "disk"): compressed save + mmap cold open. ---
    #[cfg(feature = "disk")]
    demo_disk(&g, &pat, &before);
    #[cfg(not(feature = "disk"))]
    println!("(re-run with --features serde,disk for the compressed + mmap demos)");
}

/// Format-v2 extras: a varint-delta compressed snapshot (smaller file,
/// decoding open) and the `hex-disk` mmap open of an uncompressed one
/// (near-instant open, columns paged in on demand).
#[cfg(feature = "disk")]
fn demo_disk(g: &GraphStore, pat: &TriplePattern, before: &[rdf_model::Triple]) {
    use hexastore::hexsnap::{self, Compression};

    let dir = std::env::temp_dir();
    let plain_path = dir.join("hexastore_snapshot_demo_plain.hexsnap");
    let comp_path = dir.join("hexastore_snapshot_demo_compressed.hexsnap");
    let frozen = g.store().freeze();
    hexsnap::save_frozen(&plain_path, g.dict(), &frozen).expect("write uncompressed snapshot");
    hexsnap::save_frozen_with(&comp_path, g.dict(), &frozen, Compression::VarintDelta)
        .expect("write compressed snapshot");
    let plain_bytes = std::fs::metadata(&plain_path).expect("stat").len();
    let comp_bytes = std::fs::metadata(&comp_path).expect("stat").len();
    println!("compressed snapshot: {comp_bytes} bytes vs {plain_bytes} uncompressed");

    // Compressed files open through the same loader — decode + validate.
    let (_, decoded) = hexsnap::load_frozen(&comp_path).expect("decode compressed snapshot");
    assert_eq!(hexastore::TripleStore::len(&decoded), g.len());

    // Uncompressed files can skip the read entirely: map, don't load.
    let ds = hex_disk::open_dataset(&plain_path).expect("mmap open");
    let mapped = ds.matching(pat);
    assert_eq!(mapped, before, "mapped store answers identically");
    println!(
        "mmap open: {} triples served from {} mapped bytes, heap ~{} bytes",
        hexastore::TripleStore::len(ds.store()),
        ds.store().mapped_bytes(),
        hexastore::TripleStore::heap_bytes(ds.store()),
    );

    std::fs::remove_file(&plain_path).ok();
    std::fs::remove_file(&comp_path).ok();
}
