//! A Longwell-style faceted browsing session over the Barton-like catalog
//! — the workload behind the paper's Barton queries (§5.2.1): "These
//! queries are based on a typical browsing session with the Longwell
//! browser."
//!
//! The session: view the type facet (BQ1), open Type:Text and look at the
//! property facets (BQ2), narrow to French texts (BQ4), then inspect what
//! a `Point: end` value means (BQ7).
//!
//! Run with: `cargo run --release --example library_browse`

use hex_bench_queries::barton::{self, BartonIds};
use hex_bench_queries::Suite;
use hex_datagen::barton::{generate, BartonConfig};

fn main() {
    let cfg = BartonConfig { records: 20_000, ..BartonConfig::default() };
    let triples = generate(&cfg);
    let suite = Suite::build(&triples);
    let ids = BartonIds::resolve(&suite.dict).expect("catalog defines all queried terms");
    println!(
        "catalog: {} triples, {} records, {} distinct properties\n",
        suite.len(),
        cfg.records,
        suite.hexastore.property_count()
    );

    // BQ1 — the type facet: counts of each Type value (one pos probe).
    println!("── type facet (BQ1) ──");
    let mut counts = barton::bq1_hexastore(&suite.hexastore, &ids);
    counts.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for (ty, n) in &counts {
        println!("  {:<55} {n}", suite.dict.decode(*ty).unwrap().to_string());
    }

    // BQ2 — property facets for Type: Text.
    println!("\n── property facets for Type:Text (BQ2), top 10 ──");
    let mut freqs = barton::bq2_hexastore(&suite.hexastore, &ids, None);
    freqs.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for (p, n) in freqs.iter().take(10) {
        println!("  {:<55} {n}", suite.dict.decode(*p).unwrap().to_string());
    }
    println!("  ({} properties total appear on Text records)", freqs.len());

    // BQ4 — narrow to French texts, with popular values per property.
    println!("\n── French texts: popular values per property (BQ4), top 5 ──");
    let popular = barton::bq4_hexastore(&suite.hexastore, &ids, None);
    for (p, pops) in popular.iter().take(5) {
        println!("  {}", suite.dict.decode(*p).unwrap());
        for (o, n) in pops.iter().take(3) {
            println!("    {:<53} {n}", suite.dict.decode(*o).unwrap().to_string());
        }
    }

    // BQ7 — what does Point: end mean? Inspect Encoding and Type.
    println!("\n── what is a Point:'end' resource? (BQ7) ──");
    let info = barton::bq7_hexastore(&suite.hexastore, &ids);
    let type_values: std::collections::BTreeSet<String> = info
        .iter()
        .filter(|t| t.p == ids.p_type)
        .map(|t| suite.dict.decode(t.o).unwrap().to_string())
        .collect();
    println!(
        "  {} triples about {} resources; all of type: {:?}",
        info.len(),
        info.iter().map(|t| t.s).collect::<std::collections::BTreeSet<_>>().len(),
        type_values
    );
    println!("  → 'end' values are end dates (as the paper's user discovers).");

    // BQ5 — the inference step: non-Text inferred types of DLC records.
    println!("\n── inferred types of US-Library-of-Congress records (BQ5) ──");
    let inferred = barton::bq5_hexastore(&suite.hexastore, &ids);
    let mut by_type: std::collections::BTreeMap<String, usize> = Default::default();
    for (_, ty) in &inferred {
        *by_type.entry(suite.dict.decode(*ty).unwrap().to_string()).or_default() += 1;
    }
    for (ty, n) in &by_type {
        println!("  {ty:<55} {n}");
    }
}
