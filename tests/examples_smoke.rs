//! Smoke test: every workspace example must build, run, and exit 0, so
//! examples cannot silently rot as the API evolves.
//!
//! Runs the examples through the same `cargo` that is running the test
//! suite. The examples are tiny (in-memory stores, small datasets), so
//! even a debug-profile run stays well within test budgets.

use std::process::Command;

const EXAMPLES: [&str; 7] = [
    "quickstart",
    "social_network",
    "library_browse",
    "academic_queries",
    "index_advisor",
    "prepared_queries",
    "live_updates",
];

#[test]
fn every_example_runs_and_exits_zero() {
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    for example in EXAMPLES {
        let output = Command::new(cargo)
            .current_dir(manifest_dir)
            .args(["run", "--quiet", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example `{example}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example `{example}` printed nothing; expected a demo transcript"
        );
    }
}

#[test]
fn snapshot_example_runs_with_serde_feature() {
    let output = Command::new(env!("CARGO"))
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .args(["run", "--quiet", "--features", "serde", "--example", "snapshot_persistence"])
        .output()
        .expect("failed to spawn cargo for snapshot_persistence");
    assert!(
        output.status.success(),
        "snapshot_persistence exited with {:?}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr),
    );
}
