//! The paper's Figure 1 worked example, verified literally at string
//! level, including the §4.1 index-content walkthrough.

use hex_query::execute;
use hexastore::GraphStore;
use rdf_model::{Term, TermPattern, Triple, TriplePattern};

const EX: &str = "http://example.org/";

fn iri(name: &str) -> Term {
    Term::iri(format!("{EX}{name}"))
}

fn lit(s: &str) -> Term {
    Term::literal(s)
}

fn figure1() -> GraphStore {
    let mut g = GraphStore::new();
    let rows: [(&str, &str, Term); 19] = [
        ("ID1", "type", iri("FullProfessor")),
        ("ID1", "teacherOf", lit("AI")),
        ("ID1", "bachelorFrom", lit("MIT")),
        ("ID1", "mastersFrom", lit("Cambridge")),
        ("ID1", "phdFrom", lit("Yale")),
        ("ID2", "type", iri("AssocProfessor")),
        ("ID2", "worksFor", lit("MIT")),
        ("ID2", "teacherOf", lit("DataBases")),
        ("ID2", "bachelorsFrom", lit("Yale")),
        ("ID2", "phdFrom", lit("Stanford")),
        ("ID3", "type", iri("GradStudent")),
        ("ID3", "advisor", iri("ID2")),
        ("ID3", "teachingAssist", lit("AI")),
        ("ID3", "bachelorsFrom", lit("Stanford")),
        ("ID3", "mastersFrom", lit("Princeton")),
        ("ID4", "type", iri("GradStudent")),
        ("ID4", "advisor", iri("ID1")),
        ("ID4", "takesCourse", lit("DataBases")),
        ("ID4", "bachelorsFrom", lit("Columbia")),
    ];
    for (s, p, o) in rows {
        assert!(g.insert(&Triple::new(iri(s), iri(p), o)));
    }
    g
}

#[test]
fn upper_query_relationship_of_id2_to_mit() {
    let g = figure1();
    let rs = execute(&g, &format!(r#"SELECT ?property WHERE {{ <{EX}ID2> ?property "MIT" . }}"#))
        .unwrap();
    assert_eq!(rs.rows, vec![vec![iri("worksFor")]]);
}

#[test]
fn lower_query_same_relationship_to_stanford() {
    let g = figure1();
    let rs = execute(
        &g,
        &format!(
            r#"SELECT ?b WHERE {{
                <{EX}ID1> ?prop "Yale" .
                ?b ?prop "Stanford" .
            }}"#
        ),
    )
    .unwrap();
    // ID1 phdFrom Yale; ID2 phdFrom Stanford.
    assert_eq!(rs.rows, vec![vec![iri("ID2")]]);
}

#[test]
fn section_4_1_ops_example_for_mit() {
    // "the ops indexing … includes a property vector for the object 'MIT'
    // … two property entries, namely bachelorFrom and worksFor", each with
    // a one-item subject list (ID1, ID2 respectively).
    let g = figure1();
    let mit = g.id_of(&lit("MIT")).unwrap();
    let props: Vec<String> =
        g.store().ops_vector(mit).map(|(p, _)| g.dict().decode(p).unwrap().to_string()).collect();
    assert_eq!(props, vec![format!("<{EX}bachelorFrom>"), format!("<{EX}worksFor>")]);
    let bachelor = g.id_of(&iri("bachelorFrom")).unwrap();
    let works_for = g.id_of(&iri("worksFor")).unwrap();
    let id1 = g.id_of(&iri("ID1")).unwrap();
    let id2 = g.id_of(&iri("ID2")).unwrap();
    assert_eq!(g.store().subjects_for(bachelor, mit), &[id1]);
    assert_eq!(g.store().subjects_for(works_for, mit), &[id2]);
}

#[test]
fn section_4_1_osp_example_for_stanford() {
    // "the osp indexing includes a subject vector for the object
    // 'Stanford' … two subject entries, namely ID2 and ID3", with property
    // lists {phdFrom} and {bachelorsFrom}.
    let g = figure1();
    let stanford = g.id_of(&lit("Stanford")).unwrap();
    let id2 = g.id_of(&iri("ID2")).unwrap();
    let id3 = g.id_of(&iri("ID3")).unwrap();
    assert_eq!(g.store().subject_vector_of_object(stanford), vec![id2, id3]);
    let phd = g.id_of(&iri("phdFrom")).unwrap();
    let bachelors = g.id_of(&iri("bachelorsFrom")).unwrap();
    assert_eq!(g.store().properties_for(id2, stanford), &[phd]);
    assert_eq!(g.store().properties_for(id3, stanford), &[bachelors]);
}

#[test]
fn motivation_queries_from_section_2_2_3() {
    let g = figure1();
    // "people who hold a degree, of any type, from a certain university":
    // anyone related to Yale.
    let yale_pat =
        TriplePattern::new(TermPattern::var("who"), TermPattern::var("how"), lit("Yale"));
    let yale_hits = g.matching(&yale_pat);
    assert_eq!(yale_hits.len(), 2); // ID1 phdFrom, ID2 bachelorsFrom
                                    // "people who are anyhow related with both of a pair of universities":
                                    // merge-join of two osp subject vectors (here: Yale ∩ Stanford = ID2).
    let yale = g.id_of(&lit("Yale")).unwrap();
    let stanford = g.id_of(&lit("Stanford")).unwrap();
    let both = hexastore::sorted::intersect(
        &g.store().subject_vector_of_object(yale),
        &g.store().subject_vector_of_object(stanford),
    );
    let id2 = g.id_of(&iri("ID2")).unwrap();
    assert_eq!(both, vec![id2]);
}

#[test]
fn ntriples_roundtrip_preserves_figure1() {
    let g = figure1();
    let doc = g.to_ntriples();
    let mut g2 = GraphStore::new();
    g2.load_ntriples(&doc).unwrap();
    assert_eq!(g2.len(), g.len());
    let mut a = g.triples();
    let mut b = g2.triples();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}
