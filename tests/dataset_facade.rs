//! Property-based validation of the string-level [`Dataset`] facade:
//! `Dataset::prepare(...).solutions()` must agree with the id-level
//! oracle (`execute_bgp` over a triples table, decoded through the
//! dictionary) across random queries on *every* store form — the mutable
//! `Hexastore`, the zero-copy `FrozenHexastore`, and both partial
//! flavors with random kept-index subsets. This is the contract the
//! generic facade refactor makes: one query string, any physical store,
//! identical answers.

use hex_dict::{Dictionary, Id, IdTriple};
use hex_query::DatasetQuery;
use hexastore::{
    Dataset, FrozenGraphStore, GraphStore, Hexastore, IndexKind, IndexSet, PartialGraphStore,
    PartialHexastore, TripleStore,
};
use proptest::prelude::*;
use rdf_model::Term;

fn term_for(i: u32) -> Term {
    Term::iri(format!("http://t/{i}"))
}

/// Terms are minted so that term `i` gets dictionary id `i`.
fn dict_for(n: u32) -> Dictionary {
    let mut dict = Dictionary::new();
    for i in 0..n {
        let id = dict.encode(&term_for(i));
        assert_eq!(id, Id(i));
    }
    dict
}

const MAX_ID: u32 = 6;

fn arb_triple() -> impl Strategy<Value = IdTriple> {
    (0u32..MAX_ID, 0u32..4, 0u32..MAX_ID).prop_map(IdTriple::from)
}

/// One query-text position: a constant IRI or one of three variables.
fn arb_text_term() -> impl Strategy<Value = String> {
    prop_oneof![
        (0u32..MAX_ID).prop_map(|i| term_for(i).to_string()),
        (0u16..3).prop_map(|v| format!("?v{v}")),
    ]
}

fn arb_query_text() -> impl Strategy<Value = String> {
    proptest::collection::vec((arb_text_term(), arb_text_term(), arb_text_term()), 1..4).prop_map(
        |patterns| {
            let mut body = String::new();
            for (s, p, o) in &patterns {
                body.push_str(&format!("{s} {p} {o} . "));
            }
            format!("SELECT * WHERE {{ {body}}}")
        },
    )
}

fn subset_from_bits(bits: u8) -> IndexSet {
    let mut keep = IndexSet::EMPTY;
    for (i, kind) in IndexKind::ALL.into_iter().enumerate() {
        if bits & (1 << i) != 0 {
            keep = keep.with(kind);
        }
    }
    keep
}

/// The id-level oracle: compile the same text, run the BGP on a plain
/// triples table, project, and decode through the dictionary.
fn oracle_rows(dict: &Dictionary, triples: &[IdTriple], text: &str) -> Option<Vec<Vec<Term>>> {
    let parsed = hex_query::parse_query(text).ok()?;
    let compiled = hex_query::compile(&parsed, dict).ok()?;
    let bgp = compiled.bgp.as_ref().expect("all constants are interned");
    let table = hex_baselines::TriplesTable::from_triples(triples.iter().copied());
    let rows = hex_query::execute_bgp(&table, bgp);
    let projected = hex_query::exec::project(&rows, &compiled.slots);
    let mut decoded: Vec<Vec<Term>> = projected
        .into_iter()
        .map(|row| row.into_iter().map(|id| dict.decode(id).unwrap().clone()).collect())
        .collect();
    decoded.sort();
    Some(decoded)
}

fn prepared_rows<S: TripleStore>(ds: &Dataset<S>, text: &str) -> Vec<Vec<Term>> {
    let plan = ds.prepare(text).expect("query compiles");
    let mut rows: Vec<Vec<Term>> = plan.solutions().collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dataset_prepare_matches_id_level_oracle_on_every_store(
        triples in proptest::collection::vec(arb_triple(), 0..12),
        text in arb_query_text(),
        subset_bits in 1u8..64,
    ) {
        let dict = dict_for(MAX_ID);
        let store = Hexastore::from_triples(triples.iter().copied());
        let all = store.matching(hexastore::IdPattern::ALL);
        // `oracle_rows` is None only for degenerate query text (e.g. a
        // query with zero variables, which `SELECT *` rejects).
        if let Some(expected) = oracle_rows(&dict, &all, &text) {
            let graph: GraphStore = Dataset::from_parts(dict.clone(), store);
            let frozen: FrozenGraphStore = graph.freeze();
            let partial: PartialGraphStore = Dataset::from_parts(
                dict.clone(),
                PartialHexastore::from_triples(subset_from_bits(subset_bits), all.iter().copied()),
            );
            let frozen_partial = partial.freeze();

            prop_assert_eq!(prepared_rows(&graph, &text), expected.clone(), "GraphStore");
            prop_assert_eq!(prepared_rows(&frozen, &text), expected.clone(), "FrozenGraphStore");
            prop_assert_eq!(
                prepared_rows(&partial, &text),
                expected.clone(),
                "PartialGraphStore keeping {:?}",
                partial.store().kept()
            );
            prop_assert_eq!(
                prepared_rows(&frozen_partial, &text),
                expected,
                "FrozenPartialGraphStore"
            );
        }
    }

    #[test]
    fn stats_refined_plans_agree_with_plain_plans_on_every_store(
        triples in proptest::collection::vec(arb_triple(), 0..12),
        text in arb_query_text(),
    ) {
        let dict = dict_for(MAX_ID);
        let graph: GraphStore =
            Dataset::from_parts(dict, Hexastore::from_triples(triples.iter().copied()));
        let frozen = graph.freeze();
        let stats = graph.stats();
        prop_assert_eq!(&stats, &frozen.stats(), "stats agree across freeze");
        for rows in [
            (prepared_rows(&graph, &text), {
                let plan = graph.prepare_with_stats(&text, Some(&stats)).expect("compiles");
                let mut rows: Vec<Vec<Term>> = plan.solutions().collect();
                rows.sort();
                rows
            }),
            (prepared_rows(&frozen, &text), {
                let plan = frozen.prepare_with_stats(&text, Some(&stats)).expect("compiles");
                let mut rows: Vec<Vec<Term>> = plan.solutions().collect();
                rows.sort();
                rows
            }),
        ] {
            prop_assert_eq!(rows.0, rows.1, "stats mode changed the rows");
        }
    }
}
