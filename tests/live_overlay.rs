//! Equivalence and crash-safety of the live write path: an
//! [`OverlayHexastore`] (frozen base + mutable delta + tombstones) must
//! answer all eight access patterns exactly like the [`TriplesTable`]
//! oracle through arbitrary interleavings of inserts, removes and
//! compactions — and a [`LiveGraphStore`] whose write-ahead log is cut
//! at an arbitrary byte must recover to the net effect of some prefix of
//! the logged operations, never to a torn in-between state and never
//! with a panic.

use hex_baselines::TriplesTable;
use hex_dict::IdTriple;
use hexastore::{bulk, IdPattern, LiveGraphStore, OverlayHexastore, TripleStore};
use proptest::prelude::*;
use rdf_model::{Term, Triple};
use std::path::PathBuf;

fn arb_triple() -> impl Strategy<Value = IdTriple> {
    (0u32..10, 0u32..5, 0u32..10).prop_map(IdTriple::from)
}

/// The eight access shapes, probed for every touched triple plus misses.
fn probe_patterns(triples: &[IdTriple]) -> Vec<IdPattern> {
    let mut pats = vec![IdPattern::ALL, IdPattern::spo(IdTriple::from((99, 99, 99)))];
    for &t in triples {
        pats.extend([
            IdPattern::spo(t),
            IdPattern::sp(t.s, t.p),
            IdPattern::so(t.s, t.o),
            IdPattern::po(t.p, t.o),
            IdPattern::s(t.s),
            IdPattern::p(t.p),
            IdPattern::o(t.o),
        ]);
    }
    pats
}

fn assert_matches_oracle(store: &dyn TripleStore, oracle: &TriplesTable, pat: IdPattern) {
    let mut got = store.matching(pat);
    got.sort();
    let mut expected = oracle.matching(pat);
    expected.sort();
    assert_eq!(got, expected, "{} vs oracle on {pat:?}", store.name());
    assert_eq!(store.count_matching(pat), expected.len(), "{} count {pat:?}", store.name());
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(IdTriple),
    Remove(IdTriple),
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => arb_triple().prop_map(Op::Insert),
        3 => arb_triple().prop_map(Op::Remove),
        1 => Just(Op::Compact),
    ]
}

/// A term universe where id-level triple `(s, p, o)` round-trips through
/// the string-level store as three minted IRIs.
fn term_for(i: u32) -> Term {
    Term::iri(format!("http://t/{i}"))
}

fn triple_for(t: IdTriple) -> Triple {
    Triple::new(term_for(t.s.0), term_for(t.p.0), term_for(t.o.0))
}

fn live_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("hexlive-prop-{}-{tag}-{n}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interleaved mutations and compactions leave the overlay
    /// indistinguishable from the flat oracle: same set-semantics return
    /// values, same length, same answers on every access pattern —
    /// mid-stream, at the end, and after a final compaction folds the
    /// delta and tombstones into a fresh frozen base.
    #[test]
    fn overlay_tracks_the_oracle_through_interleaved_mutations(
        seed in proptest::collection::vec(arb_triple(), 0..40),
        ops in proptest::collection::vec(arb_op(), 0..60),
    ) {
        let mut oracle = TriplesTable::from_triples(seed.iter().copied());
        let mut overlay = OverlayHexastore::new(bulk::build_frozen(seed.clone()));
        let mut touched = seed;
        for &op in &ops {
            match op {
                Op::Insert(t) => {
                    touched.push(t);
                    prop_assert_eq!(overlay.insert(t), oracle.insert(t), "insert {t:?}");
                }
                Op::Remove(t) => {
                    touched.push(t);
                    prop_assert_eq!(overlay.remove(t), oracle.remove(t), "remove {t:?}");
                }
                Op::Compact => overlay.compact(),
            }
            prop_assert_eq!(overlay.len(), oracle.len());
        }
        for pat in probe_patterns(&touched) {
            assert_matches_oracle(&overlay, &oracle, pat);
        }
        overlay.compact();
        prop_assert!(!overlay.is_dirty());
        prop_assert_eq!(overlay.len(), oracle.len());
        for pat in probe_patterns(&touched) {
            assert_matches_oracle(&overlay, &oracle, pat);
        }
    }

    /// Cut the write-ahead log at an arbitrary byte and recovery must
    /// land exactly on the net state of some prefix of the logged
    /// operations (torn or corrupt tails roll back whole records), and
    /// the recovered store must stay writable.
    #[test]
    fn truncated_wal_recovers_to_an_operation_prefix(
        ops in proptest::collection::vec(arb_op(), 1..25),
        cut_seed in 0u64..u64::MAX,
    ) {
        let dir = live_dir("cut");
        // Universe of every triple the ops mention, deduplicated: a
        // state is fully described by membership over this universe.
        let mut universe: Vec<IdTriple> = ops
            .iter()
            .filter_map(|&op| match op {
                Op::Insert(t) | Op::Remove(t) => Some(t),
                Op::Compact => None,
            })
            .collect();
        universe.sort_unstable();
        universe.dedup();

        // Apply the ops (Compact is reinterpreted as a no-op here: the
        // cut must land inside one uninterrupted log) and snapshot the
        // net state after every *logged* operation — no-ops are
        // suppressed and never reach the WAL.
        let mut state: Vec<bool> = vec![false; universe.len()];
        let mut prefix_states: Vec<Vec<bool>> = vec![state.clone()];
        {
            let mut live = LiveGraphStore::open(&dir).unwrap();
            for &op in &ops {
                let logged = match op {
                    Op::Insert(t) => {
                        let slot = universe.binary_search(&t).unwrap();
                        let changed = live.insert(&triple_for(t)).unwrap();
                        prop_assert_eq!(changed, !state[slot]);
                        state[slot] = true;
                        changed
                    }
                    Op::Remove(t) => {
                        let slot = universe.binary_search(&t).unwrap();
                        let changed = live.remove(&triple_for(t)).unwrap();
                        prop_assert_eq!(changed, state[slot]);
                        state[slot] = false;
                        changed
                    }
                    Op::Compact => false,
                };
                if logged {
                    prefix_states.push(state.clone());
                }
            }
            live.sync().unwrap();
            // Dropped without compacting: the WAL is the only record.
        }

        let wal_path = dir.join("wal.hexwal");
        let full_len = std::fs::metadata(&wal_path).unwrap().len();
        let cut = cut_seed % (full_len + 1);
        let file = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let recovered = LiveGraphStore::recover(&dir).unwrap();
        let recovered_state: Vec<bool> =
            universe.iter().map(|&t| recovered.contains(&triple_for(t))).collect();
        let live_triples = recovered_state.iter().filter(|&&m| m).count();
        prop_assert_eq!(recovered.len(), live_triples);
        prop_assert!(
            prefix_states.contains(&recovered_state),
            "recovered state {recovered_state:?} matches no op prefix (cut at {cut}/{full_len})"
        );
        if cut == full_len {
            prop_assert_eq!(recovered_state, prefix_states.last().unwrap().clone());
        }

        // The recovered store keeps accepting (and logging) writes.
        let mut recovered = recovered;
        let probe = IdTriple::from((90, 90, 90));
        prop_assert!(recovered.insert(&triple_for(probe)).unwrap());
        prop_assert!(recovered.contains(&triple_for(probe)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
