//! Cross-crate integration: every benchmark query returns identical
//! results on every store, on both generated datasets, and the generic
//! SPARQL-like engine agrees with the hand-written physical plans.

use hex_bench_queries::{barton, lubm, Suite};
use hex_datagen::{barton::BartonConfig, lubm::LubmConfig};
use hex_query::execute_on;
use hexastore::TripleStore;

fn barton_suite() -> (Suite, barton::BartonIds) {
    let triples = hex_datagen::barton::generate(&BartonConfig {
        records: 2_500,
        seed: 3,
        ..BartonConfig::default()
    });
    let suite = Suite::build(&triples);
    let ids = barton::BartonIds::resolve(&suite.dict).expect("all terms generated");
    (suite, ids)
}

fn lubm_suite() -> (Suite, lubm::LubmIds) {
    let triples = hex_datagen::lubm::generate(&LubmConfig::tiny());
    let suite = Suite::build(&triples);
    let ids = lubm::LubmIds::resolve(&suite.dict).expect("all terms generated");
    (suite, ids)
}

#[test]
fn all_barton_queries_agree_across_stores() {
    let (s, ids) = barton_suite();
    assert_eq!(barton::bq1_covp1(&s.covp1, &ids), barton::bq1_hexastore(&s.hexastore, &ids));
    assert_eq!(barton::bq1_covp2(&s.covp2, &ids), barton::bq1_hexastore(&s.hexastore, &ids));
    for props in [None, Some(ids.interesting.as_slice())] {
        assert_eq!(
            barton::bq2_covp1(&s.covp1, &ids, props),
            barton::bq2_hexastore(&s.hexastore, &ids, props)
        );
        assert_eq!(
            barton::bq2_covp2(&s.covp2, &ids, props),
            barton::bq2_hexastore(&s.hexastore, &ids, props)
        );
        assert_eq!(
            barton::bq3_covp1(&s.covp1, &ids, props),
            barton::bq3_hexastore(&s.hexastore, &ids, props)
        );
        assert_eq!(
            barton::bq3_covp2(&s.covp2, &ids, props),
            barton::bq3_hexastore(&s.hexastore, &ids, props)
        );
        assert_eq!(
            barton::bq4_covp1(&s.covp1, &ids, props),
            barton::bq4_hexastore(&s.hexastore, &ids, props)
        );
        assert_eq!(
            barton::bq4_covp2(&s.covp2, &ids, props),
            barton::bq4_hexastore(&s.hexastore, &ids, props)
        );
        assert_eq!(
            barton::bq6_covp1(&s.covp1, &ids, props),
            barton::bq6_hexastore(&s.hexastore, &ids, props)
        );
        assert_eq!(
            barton::bq6_covp2(&s.covp2, &ids, props),
            barton::bq6_hexastore(&s.hexastore, &ids, props)
        );
    }
    assert_eq!(barton::bq5_covp1(&s.covp1, &ids), barton::bq5_hexastore(&s.hexastore, &ids));
    assert_eq!(barton::bq5_covp2(&s.covp2, &ids), barton::bq5_hexastore(&s.hexastore, &ids));
    assert_eq!(barton::bq7_covp1(&s.covp1, &ids), barton::bq7_hexastore(&s.hexastore, &ids));
    assert_eq!(barton::bq7_covp2(&s.covp2, &ids), barton::bq7_hexastore(&s.hexastore, &ids));
}

#[test]
fn all_lubm_queries_agree_across_stores() {
    let (s, ids) = lubm_suite();
    assert_eq!(lubm::lq1_covp1(&s.covp1, &ids), lubm::lq1_hexastore(&s.hexastore, &ids));
    assert_eq!(lubm::lq1_covp2(&s.covp2, &ids), lubm::lq1_hexastore(&s.hexastore, &ids));
    assert_eq!(lubm::lq2_covp1(&s.covp1, &ids), lubm::lq2_hexastore(&s.hexastore, &ids));
    assert_eq!(lubm::lq2_covp2(&s.covp2, &ids), lubm::lq2_hexastore(&s.hexastore, &ids));
    assert_eq!(lubm::lq3_covp1(&s.covp1, &ids), lubm::lq3_hexastore(&s.hexastore, &ids));
    assert_eq!(lubm::lq3_covp2(&s.covp2, &ids), lubm::lq3_hexastore(&s.hexastore, &ids));
    assert_eq!(lubm::lq4_covp1(&s.covp1, &ids), lubm::lq4_hexastore(&s.hexastore, &ids));
    assert_eq!(lubm::lq4_covp2(&s.covp2, &ids), lubm::lq4_hexastore(&s.hexastore, &ids));
    assert_eq!(lubm::lq5_covp1(&s.covp1, &ids), lubm::lq5_hexastore(&s.hexastore, &ids));
    assert_eq!(lubm::lq5_covp2(&s.covp2, &ids), lubm::lq5_hexastore(&s.hexastore, &ids));
}

#[test]
fn sparql_engine_agrees_with_lq1_plan() {
    // LQ1 expressed declaratively must match the hand-written osp plan.
    let (s, ids) = lubm_suite();
    let course = s.dict.decode(ids.course10).unwrap().clone();
    let query = format!("SELECT ?who ?how WHERE {{ ?who ?how {course} . }}");
    for store in [&s.hexastore as &dyn TripleStore, &s.table, &s.covp1, &s.covp2] {
        let rs = execute_on(store, &s.dict, &query).unwrap();
        let mut got: Vec<(String, String)> =
            rs.rows.iter().map(|r| (r[0].to_string(), r[1].to_string())).collect();
        got.sort();
        let mut expected: Vec<(String, String)> = lubm::lq1_hexastore(&s.hexastore, &ids)
            .into_iter()
            .map(|(subj, prop)| {
                (s.dict.decode(subj).unwrap().to_string(), s.dict.decode(prop).unwrap().to_string())
            })
            .collect();
        expected.sort();
        assert_eq!(got, expected, "store {}", store.name());
    }
}

#[test]
fn sparql_engine_agrees_with_figure1_style_join_on_lubm() {
    // Students whose advisor teaches Course10 — a two-step join crossing
    // subject/object roles, evaluated on all four stores.
    let (s, ids) = lubm_suite();
    let course = s.dict.decode(ids.course10).unwrap().clone();
    let teacher_of = s.dict.decode(ids.p_teacher_of).unwrap().clone();
    let query = format!(
        "SELECT DISTINCT ?student WHERE {{
            ?student <http://lubm.example.org/advisor> ?prof .
            ?prof {teacher_of} {course} .
        }}"
    );
    let reference = {
        let mut rows = execute_on(&s.hexastore, &s.dict, &query).unwrap().rows;
        rows.sort();
        rows
    };
    for store in [&s.table as &dyn TripleStore, &s.covp1, &s.covp2] {
        let mut rows = execute_on(store, &s.dict, &query).unwrap().rows;
        rows.sort();
        assert_eq!(rows, reference, "store {}", store.name());
    }
}

#[test]
fn path_plans_agree_on_both_datasets() {
    let (s, _) = lubm_suite();
    let id = |name: &str| s.dict.id_of(&hex_datagen::lubm::Vocab::predicate(name)).unwrap();
    for props in [
        vec![id("advisor"), id("worksFor")],
        vec![id("advisor"), id("worksFor"), id("subOrganizationOf")],
        vec![id("takesCourse")],
    ] {
        let fast = hex_query::follow_path(&s.hexastore, &props);
        let generic_covp = hex_query::follow_path_generic(&s.covp1, &props);
        let generic_table = hex_query::follow_path_generic(&s.table, &props);
        assert_eq!(fast.ends, generic_covp.ends);
        assert_eq!(fast.ends, generic_table.ends);
    }
}
