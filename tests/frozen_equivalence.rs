//! Cross-crate equivalence of the frozen slab stores: a
//! [`FrozenHexastore`] (built directly, via `freeze()`, and via a binary
//! `hexsnap` save → load round-trip) must answer all eight access
//! patterns exactly like the mutable store *and* the [`TriplesTable`]
//! oracle — and corrupted snapshots must be rejected, never
//! misinterpreted.

use hex_baselines::TriplesTable;
use hex_dict::IdTriple;
use hexastore::{
    bulk, hexsnap, FrozenHexastore, Hexastore, IdPattern, IndexKind, IndexSet, PartialHexastore,
    TripleStore,
};
use proptest::prelude::*;
use std::io::Cursor;

fn arb_triple() -> impl Strategy<Value = IdTriple> {
    (0u32..10, 0u32..5, 0u32..10).prop_map(IdTriple::from)
}

/// The eight access shapes, probed for every stored triple plus misses.
fn probe_patterns(triples: &[IdTriple]) -> Vec<IdPattern> {
    let mut pats = vec![IdPattern::ALL, IdPattern::spo(IdTriple::from((99, 99, 99)))];
    for &t in triples {
        pats.extend([
            IdPattern::spo(t),
            IdPattern::sp(t.s, t.p),
            IdPattern::so(t.s, t.o),
            IdPattern::po(t.p, t.o),
            IdPattern::s(t.s),
            IdPattern::p(t.p),
            IdPattern::o(t.o),
        ]);
    }
    pats
}

fn assert_matches_oracle(store: &dyn TripleStore, oracle: &TriplesTable, pat: IdPattern) {
    let mut got = store.matching(pat);
    got.sort();
    let mut expected = oracle.matching(pat);
    expected.sort();
    assert_eq!(got, expected, "{} vs oracle on {pat:?}", store.name());
    assert_eq!(store.count_matching(pat), expected.len(), "{} count {pat:?}", store.name());
}

/// Round-trips a frozen store through an in-memory `hexsnap` image with
/// prebuilt slab sections, using ids only (no dictionary section needed
/// for the id-level equivalence check).
fn hexsnap_roundtrip(frozen: &FrozenHexastore) -> FrozenHexastore {
    let mut w = hexsnap::Writer::new(Cursor::new(Vec::new())).unwrap();
    w.dictionary(&hex_dict::Dictionary::new()).unwrap();
    w.triples(frozen.len() as u64, frozen.iter_matching(IdPattern::ALL)).unwrap();
    w.frozen(frozen).unwrap();
    let bytes = w.finish().unwrap().into_inner();
    let mut r = hexsnap::Reader::new(Cursor::new(bytes)).unwrap();
    assert!(r.has_frozen());
    r.frozen().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Direct frozen builds, freeze() conversions and binary round-trips
    /// all agree with the mutable store and the triples-table oracle on
    /// every access pattern.
    #[test]
    fn frozen_stores_match_mutable_and_oracle(
        triples in proptest::collection::vec(arb_triple(), 0..120),
        threads in 1usize..5,
    ) {
        let oracle = TriplesTable::from_triples(triples.iter().copied());
        let mutable = Hexastore::from_triples(triples.iter().copied());
        let direct = bulk::build_frozen_with(
            triples.clone(),
            bulk::Config { threads, presize: true },
        );
        let via_freeze = mutable.freeze();
        let reloaded = hexsnap_roundtrip(&via_freeze);

        prop_assert_eq!(direct.len(), oracle.len());
        prop_assert_eq!(via_freeze.len(), oracle.len());
        prop_assert_eq!(reloaded.len(), oracle.len());
        for pat in probe_patterns(&triples) {
            assert_matches_oracle(&mutable, &oracle, pat);
            assert_matches_oracle(&direct, &oracle, pat);
            assert_matches_oracle(&via_freeze, &oracle, pat);
            assert_matches_oracle(&reloaded, &oracle, pat);
        }
        // Thawing the reloaded snapshot recovers the mutable store.
        let thawed = reloaded.thaw();
        prop_assert_eq!(thawed.matching(IdPattern::ALL), mutable.matching(IdPattern::ALL));
        prop_assert_eq!(thawed.space_stats(), mutable.space_stats());
    }

    /// Frozen partial stores answer every pattern like the oracle for
    /// random kept-index subsets — including shapes that fall back to a
    /// filtered scan.
    #[test]
    fn frozen_partial_matches_oracle(
        triples in proptest::collection::vec(arb_triple(), 0..80),
        subset_bits in 1u8..64,
    ) {
        let mut keep = IndexSet::EMPTY;
        for (i, kind) in IndexKind::ALL.into_iter().enumerate() {
            if subset_bits & (1 << i) != 0 {
                keep = keep.with(kind);
            }
        }
        let oracle = TriplesTable::from_triples(triples.iter().copied());
        let frozen = PartialHexastore::from_triples(keep, triples.iter().copied()).freeze();
        prop_assert_eq!(frozen.kept(), keep);
        for pat in probe_patterns(&triples) {
            assert_matches_oracle(&frozen, &oracle, pat);
        }
    }

    /// Snapshot bytes with a corrupted interior still open only if the
    /// section table stays intact — and then every section read either
    /// succeeds with consistent data or errors; it must never panic.
    #[test]
    fn corrupted_snapshot_bytes_never_panic(
        triples in proptest::collection::vec(arb_triple(), 1..40),
        corrupt_at in 12usize..4096,
        xor in 1u8..=255,
    ) {
        let frozen = bulk::build_frozen(triples);
        let mut w = hexsnap::Writer::new(Cursor::new(Vec::new())).unwrap();
        w.dictionary(&hex_dict::Dictionary::new()).unwrap();
        w.triples(frozen.len() as u64, frozen.iter_matching(IdPattern::ALL)).unwrap();
        w.frozen(&frozen).unwrap();
        let mut bytes = w.finish().unwrap().into_inner();
        let pos = corrupt_at % bytes.len();
        bytes[pos] ^= xor;
        if let Ok(mut r) = hexsnap::Reader::new(Cursor::new(bytes)) {
            // Reads may fail with a corruption error or, if the flip hit
            // id payload bytes, succeed with different ids — both fine.
            let _ = r.dictionary();
            let _ = r.triples();
            if r.has_frozen() {
                let _ = r.frozen();
            }
        }
    }
}
