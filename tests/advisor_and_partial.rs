//! Integration of the §6 extensions: profile the paper's own query mix
//! over generated data, build the recommended `PartialHexastore`, and
//! verify it answers the mix identically to the full sextuple store while
//! using less memory — with the query planner consulting the partial
//! store's `capabilities()` so no plan has to be picked by hand.

use hex_bench_queries::lubm::LubmIds;
use hex_bench_queries::Suite;
use hex_datagen::lubm::{generate, LubmConfig, Vocab};
use hexastore::advisor::{estimate_savings, recommend, IndexKind, WorkloadProfile};
use hexastore::{IdPattern, PartialHexastore, TripleStore};

fn paper_workload(ids: &LubmIds) -> Vec<IdPattern> {
    vec![
        IdPattern::po(ids.p_type, ids.class_university),
        IdPattern::sp(ids.assoc_prof10, ids.p_teacher_of),
        IdPattern::s(ids.assoc_prof10),
        IdPattern::o(ids.course10),
        IdPattern::p(ids.p_teacher_of),
    ]
}

#[test]
fn recommended_partial_store_answers_the_workload_directly() {
    let triples = generate(&LubmConfig::tiny());
    let suite = Suite::build(&triples);
    let ids = LubmIds::resolve(&suite.dict).unwrap();
    let workload = paper_workload(&ids);

    let profile = WorkloadProfile::from_patterns(&workload);
    let keep = recommend(&profile);
    // §6's observation: this mix never forces the ops ordering.
    assert!(!keep.contains(IndexKind::Ops));
    assert!(keep.len() < 6);

    // Bulk-build the partial store so the memory comparison is
    // like-for-like: both stores exactly pre-sized by the bulk loader.
    let partial = PartialHexastore::from_triples(keep, suite.triples.iter().copied());
    assert_eq!(partial.len(), suite.hexastore.len());
    assert!(partial.heap_bytes() < suite.hexastore.heap_bytes());

    for pat in workload {
        assert!(partial.serves_directly(pat.shape()), "{pat:?} must stay a direct probe");
        let mut expected = suite.hexastore.matching(pat);
        expected.sort();
        let mut got = partial.matching(pat);
        got.sort();
        assert_eq!(got, expected, "{pat:?}");
    }
}

#[test]
fn savings_estimate_is_consistent_with_actual_partial_memory() {
    let triples = generate(&LubmConfig::tiny());
    let suite = Suite::build(&triples);
    let ids = LubmIds::resolve(&suite.dict).unwrap();
    let keep = recommend(&WorkloadProfile::from_patterns(&paper_workload(&ids)));

    let partial = PartialHexastore::from_triples(keep, suite.triples.iter().copied());
    let full = suite.hexastore.heap_bytes();
    let estimated_saving = estimate_savings(&suite.hexastore, keep);
    let actual_saving = full.saturating_sub(partial.heap_bytes());
    // The estimate attributes shared lists pairwise and splits
    // header/vector bytes evenly; the partial store additionally keeps an
    // *unshared* list copy per kept unpaired ordering, so realized savings
    // run below the estimate. The heuristic must still land within ~3×.
    let ratio = estimated_saving as f64 / actual_saving.max(1) as f64;
    assert!(
        (0.3..3.0).contains(&ratio),
        "estimate {estimated_saving} vs actual {actual_saving} (ratio {ratio})"
    );
}

#[test]
fn partial_store_queries_plan_automatically_from_capabilities() {
    // End-to-end §6 + streaming-API flow: recommend an index subset for
    // the paper's mix, bulk-build the reduced store, then let `prepare`
    // choose the join order from `capabilities()` — no hand-picked plans.
    let triples = generate(&LubmConfig::tiny());
    let suite = Suite::build(&triples);
    let ids = LubmIds::resolve(&suite.dict).unwrap();
    let keep = recommend(&WorkloadProfile::from_patterns(&paper_workload(&ids)));
    let partial = PartialHexastore::from_triples(keep, suite.triples.iter().copied());
    assert_eq!(partial.capabilities(), keep);

    let queries = [
        // po + sp join: students of AssociateProfessor10's courses.
        format!(
            "SELECT ?x WHERE {{ ?x {} {} . {} {} ?c . }}",
            Vocab::predicate("type"),
            Vocab::class("University"),
            Vocab::associate_professor(0, 0, 10),
            Vocab::predicate("teacherOf"),
        ),
        // Everyone related to Course10, by any property.
        format!("SELECT ?s ?p WHERE {{ ?s ?p {} . }}", Vocab::course(0, 0, 10)),
        format!("ASK {{ ?x {} {} . }}", Vocab::predicate("type"), Vocab::class("University")),
    ];
    for query in &queries {
        let plan = hex_query::prepare_on(&partial, &suite.dict, query).unwrap();
        // Every step's access shape must be servable by a kept ordering:
        // the planner consulted capabilities, the explain text proves it.
        let text = plan.explain();
        assert!(!text.contains("via scan"), "unservable step in:\n{text}");
        for step in plan.steps() {
            let kind = step.index.expect("every step indexed");
            assert!(keep.contains(kind), "{step:?} uses a dropped ordering");
        }
        // And the reduced store answers exactly like the full one.
        let mut got = plan.run().rows;
        got.sort();
        let mut expected =
            hex_query::execute_on(&suite.hexastore, &suite.dict, query).unwrap().rows;
        expected.sort();
        assert_eq!(got, expected, "{query}");
    }
}

#[test]
fn degraded_shapes_still_answer_correctly_on_generated_data() {
    // Keep only spo: every non-subject-bound shape takes the fallback
    // scan, and must still agree with the full store.
    let triples = generate(&LubmConfig::tiny());
    let suite = Suite::build(&triples);
    let ids = LubmIds::resolve(&suite.dict).unwrap();
    let mut spo_only = PartialHexastore::new(hexastore::IndexSet::EMPTY.with(IndexKind::Spo));
    for &t in &suite.triples {
        spo_only.insert(t);
    }
    for pat in [
        IdPattern::o(ids.course10),
        IdPattern::po(ids.p_type, ids.class_university),
        IdPattern::p(ids.p_teacher_of),
    ] {
        assert!(!spo_only.serves_directly(pat.shape()));
        let mut expected = suite.hexastore.matching(pat);
        expected.sort();
        let mut got = spo_only.matching(pat);
        got.sort();
        assert_eq!(got, expected, "{pat:?}");
    }
}
