//! Integration of the §6 extensions: profile the paper's own query mix
//! over generated data, build the recommended `PartialHexastore`, and
//! verify it answers the mix identically to the full sextuple store while
//! using less memory — with the query planner consulting the partial
//! store's `capabilities()` so no plan has to be picked by hand.

use hex_bench_queries::lubm::LubmIds;
use hex_bench_queries::Suite;
use hex_datagen::lubm::{generate, LubmConfig, Vocab};
use hexastore::advisor::{estimate_savings, recommend, IndexKind, WorkloadProfile};
use hexastore::{IdPattern, IndexSet, PartialHexastore, Shape, TripleStore};

fn paper_workload(ids: &LubmIds) -> Vec<IdPattern> {
    vec![
        IdPattern::po(ids.p_type, ids.class_university),
        IdPattern::sp(ids.assoc_prof10, ids.p_teacher_of),
        IdPattern::s(ids.assoc_prof10),
        IdPattern::o(ids.course10),
        IdPattern::p(ids.p_teacher_of),
    ]
}

#[test]
fn recommended_partial_store_answers_the_workload_directly() {
    let triples = generate(&LubmConfig::tiny());
    let suite = Suite::build(&triples);
    let ids = LubmIds::resolve(&suite.dict).unwrap();
    let workload = paper_workload(&ids);

    let profile = WorkloadProfile::from_patterns(&workload);
    let keep = recommend(&profile);
    // §6's observation: this mix never forces the ops ordering.
    assert!(!keep.contains(IndexKind::Ops));
    assert!(keep.len() < 6);

    // Bulk-build the partial store so the memory comparison is
    // like-for-like: both stores exactly pre-sized by the bulk loader.
    let partial = PartialHexastore::from_triples(keep, suite.triples.iter().copied());
    assert_eq!(partial.len(), suite.hexastore.len());
    assert!(partial.heap_bytes() < suite.hexastore.heap_bytes());

    for pat in workload {
        assert!(partial.serves_directly(pat.shape()), "{pat:?} must stay a direct probe");
        let mut expected = suite.hexastore.matching(pat);
        expected.sort();
        let mut got = partial.matching(pat);
        got.sort();
        assert_eq!(got, expected, "{pat:?}");
    }
}

#[test]
fn savings_estimate_is_consistent_with_actual_partial_memory() {
    let triples = generate(&LubmConfig::tiny());
    let suite = Suite::build(&triples);
    let ids = LubmIds::resolve(&suite.dict).unwrap();
    let keep = recommend(&WorkloadProfile::from_patterns(&paper_workload(&ids)));

    let partial = PartialHexastore::from_triples(keep, suite.triples.iter().copied());
    let full = suite.hexastore.heap_bytes();
    let estimated_saving = estimate_savings(&suite.hexastore, keep);
    let actual_saving = full.saturating_sub(partial.heap_bytes());
    // The estimate attributes shared lists pairwise and splits
    // header/vector bytes evenly; the partial store additionally keeps an
    // *unshared* list copy per kept unpaired ordering, so realized savings
    // run below the estimate. The heuristic must still land within ~3×.
    let ratio = estimated_saving as f64 / actual_saving.max(1) as f64;
    assert!(
        (0.3..3.0).contains(&ratio),
        "estimate {estimated_saving} vs actual {actual_saving} (ratio {ratio})"
    );
}

#[test]
fn partial_store_queries_plan_automatically_from_capabilities() {
    // End-to-end §6 + streaming-API flow: recommend an index subset for
    // the paper's mix, bulk-build the reduced store, then let `prepare`
    // choose the join order from `capabilities()` — no hand-picked plans.
    let triples = generate(&LubmConfig::tiny());
    let suite = Suite::build(&triples);
    let ids = LubmIds::resolve(&suite.dict).unwrap();
    let keep = recommend(&WorkloadProfile::from_patterns(&paper_workload(&ids)));
    let partial = PartialHexastore::from_triples(keep, suite.triples.iter().copied());
    assert_eq!(partial.capabilities(), keep);

    let queries = [
        // po + sp join: students of AssociateProfessor10's courses.
        format!(
            "SELECT ?x WHERE {{ ?x {} {} . {} {} ?c . }}",
            Vocab::predicate("type"),
            Vocab::class("University"),
            Vocab::associate_professor(0, 0, 10),
            Vocab::predicate("teacherOf"),
        ),
        // Everyone related to Course10, by any property.
        format!("SELECT ?s ?p WHERE {{ ?s ?p {} . }}", Vocab::course(0, 0, 10)),
        format!("ASK {{ ?x {} {} . }}", Vocab::predicate("type"), Vocab::class("University")),
    ];
    for query in &queries {
        let plan = hex_query::prepare_on(&partial, &suite.dict, query).unwrap();
        // Every step's access shape must be servable by a kept ordering:
        // the planner consulted capabilities, the explain text proves it.
        let text = plan.explain();
        assert!(!text.contains("via scan"), "unservable step in:\n{text}");
        for step in plan.steps() {
            let kind = step.index.expect("every step indexed");
            assert!(keep.contains(kind), "{step:?} uses a dropped ordering");
        }
        // And the reduced store answers exactly like the full one.
        let mut got = plan.run().rows;
        got.sort();
        let mut expected =
            hex_query::execute_on(&suite.hexastore, &suite.dict, query).unwrap().rows;
        expected.sort();
        assert_eq!(got, expected, "{query}");
    }
}

/// The access shapes of the twelve paper queries (BQ1–BQ7, LQ1–LQ5), as
/// the hand-written physical plans in `hex_bench_queries` probe them.
fn twelve_paper_query_shapes() -> Vec<(&'static str, Vec<Shape>)> {
    vec![
        ("BQ1", vec![Shape::P]),
        ("BQ2", vec![Shape::Po, Shape::S]),
        ("BQ3", vec![Shape::Po, Shape::S, Shape::P]),
        ("BQ4", vec![Shape::Po, Shape::Po, Shape::S, Shape::P]),
        ("BQ5", vec![Shape::Po, Shape::Sp, Shape::P]),
        ("BQ6", vec![Shape::Po, Shape::Po, Shape::Sp, Shape::Sp]),
        ("BQ7", vec![Shape::Po, Shape::P]),
        ("LQ1", vec![Shape::O]),
        ("LQ2", vec![Shape::S, Shape::O]),
        ("LQ3", vec![Shape::Sp, Shape::O]),
        ("LQ4", vec![Shape::Po, Shape::Po]),
        ("LQ5", vec![Shape::Po, Shape::Po]),
    ]
}

fn pattern_for(shape: Shape) -> IdPattern {
    let (a, b) = (hex_dict::Id(0), hex_dict::Id(1));
    match shape {
        Shape::Sp => IdPattern::sp(a, b),
        Shape::So => IdPattern::so(a, b),
        Shape::Po => IdPattern::po(a, b),
        Shape::S => IdPattern::s(a),
        Shape::P => IdPattern::p(a),
        Shape::O => IdPattern::o(a),
        Shape::Spo => IdPattern::spo(hex_dict::IdTriple::from((0, 1, 2))),
        Shape::None_ => IdPattern::ALL,
    }
}

/// The pre-extension advisor, reimplemented as the oracle: two-bound
/// shapes servable only by their pair's *primary* ordering, single-server
/// shapes forced, flexible shapes reusing a chosen index when possible.
fn recommend_primary_only(shapes: &[Shape]) -> IndexSet {
    use hexastore::IndexSet as S;
    let servers = |shape: Shape| -> S {
        match shape {
            Shape::Sp => S::EMPTY.with(IndexKind::Spo),
            Shape::So => S::EMPTY.with(IndexKind::Sop),
            Shape::Po => S::EMPTY.with(IndexKind::Pos),
            Shape::S => S::EMPTY.with(IndexKind::Spo).with(IndexKind::Sop),
            Shape::P => S::EMPTY.with(IndexKind::Pso).with(IndexKind::Pos),
            Shape::O => S::EMPTY.with(IndexKind::Osp).with(IndexKind::Ops),
            Shape::Spo | Shape::None_ => IndexSet::all(),
        }
    };
    let mut chosen = S::EMPTY;
    for &shape in shapes {
        let s = servers(shape);
        if s.len() == 1 {
            chosen = chosen.with(s.iter().next().unwrap());
        }
    }
    for &shape in shapes {
        let s = servers(shape);
        if s.len() == 1 || s == IndexSet::all() {
            continue;
        }
        if !s.iter().any(|k| chosen.contains(k)) {
            chosen = chosen.with(s.iter().next().unwrap());
        }
    }
    chosen
}

#[test]
fn pair_aware_serving_shrinks_or_preserves_recommendations_on_paper_queries() {
    // Satellite check for the extended `serving_indices`: with two-bound
    // shapes servable by either ordering of their pair, the advisor's
    // recommended sets must shrink or stay equal on the twelve paper
    // queries — and still serve every shape with a single probe.
    for (name, shapes) in twelve_paper_query_shapes() {
        let patterns: Vec<IdPattern> = shapes.iter().map(|&s| pattern_for(s)).collect();
        let profile = WorkloadProfile::from_patterns(&patterns);
        let extended = recommend(&profile);
        let primary_only = recommend_primary_only(&shapes);
        assert!(
            extended.len() <= primary_only.len(),
            "{name}: extended {extended:?} larger than primary-only {primary_only:?}"
        );
        for &shape in &shapes {
            assert!(extended.serves(shape), "{name}: {shape:?} unserved by {extended:?}");
        }
    }
    // The union workload of all twelve queries shrinks-or-equals too.
    let all: Vec<IdPattern> = twelve_paper_query_shapes()
        .iter()
        .flat_map(|(_, shapes)| shapes.iter().map(|&s| pattern_for(s)))
        .collect();
    let all_shapes: Vec<Shape> = all.iter().map(|p| p.shape()).collect();
    let extended = recommend(&WorkloadProfile::from_patterns(&all));
    assert!(extended.len() <= recommend_primary_only(&all_shapes).len());
    // And a COVP1-shaped workload demonstrates a strict shrink: one pso
    // index now covers both (s, p, ?) and (?, p, ?).
    let covp = [pattern_for(Shape::Sp), pattern_for(Shape::P)];
    let covp_shapes = [Shape::Sp, Shape::P];
    let extended = recommend(&WorkloadProfile::from_patterns(&covp));
    assert!(extended.len() < recommend_primary_only(&covp_shapes).len());
    assert_eq!(extended, IndexSet::EMPTY.with(IndexKind::Pso));
}

#[test]
fn mirror_ordering_serves_two_bound_shapes_in_partial_stores() {
    // A pso-only partial store must answer (s, p, ?) with a direct probe
    // (its pso[p][s] list), not a fallback scan — and correctly.
    let triples = generate(&LubmConfig::tiny());
    let suite = Suite::build(&triples);
    let pso_only = PartialHexastore::from_triples(
        hexastore::IndexSet::EMPTY.with(IndexKind::Pso),
        suite.triples.iter().copied(),
    );
    assert!(pso_only.serves_directly(Shape::Sp));
    let ids = LubmIds::resolve(&suite.dict).unwrap();
    let pat = IdPattern::sp(ids.assoc_prof10, ids.p_teacher_of);
    let mut expected = suite.hexastore.matching(pat);
    expected.sort();
    let mut got = pso_only.matching(pat);
    got.sort();
    assert_eq!(got, expected);
    // The frozen form serves it identically.
    let frozen = pso_only.freeze();
    assert!(frozen.serves_directly(Shape::Sp));
    let mut got = frozen.matching(pat);
    got.sort();
    assert_eq!(got, expected);
}

#[test]
fn degraded_shapes_still_answer_correctly_on_generated_data() {
    // Keep only spo: every non-subject-bound shape takes the fallback
    // scan, and must still agree with the full store.
    let triples = generate(&LubmConfig::tiny());
    let suite = Suite::build(&triples);
    let ids = LubmIds::resolve(&suite.dict).unwrap();
    let mut spo_only = PartialHexastore::new(hexastore::IndexSet::EMPTY.with(IndexKind::Spo));
    for &t in &suite.triples {
        spo_only.insert(t);
    }
    for pat in [
        IdPattern::o(ids.course10),
        IdPattern::po(ids.p_type, ids.class_university),
        IdPattern::p(ids.p_teacher_of),
    ] {
        assert!(!spo_only.serves_directly(pat.shape()));
        let mut expected = suite.hexastore.matching(pat);
        expected.sort();
        let mut got = spo_only.matching(pat);
        got.sort();
        assert_eq!(got, expected, "{pat:?}");
    }
}
