//! Integration of the §6 extensions: profile the paper's own query mix
//! over generated data, build the recommended `PartialHexastore`, and
//! verify it answers the mix identically to the full sextuple store while
//! using less memory.

use hex_bench_queries::lubm::LubmIds;
use hex_bench_queries::Suite;
use hex_datagen::lubm::{generate, LubmConfig};
use hexastore::advisor::{estimate_savings, recommend, IndexKind, WorkloadProfile};
use hexastore::{IdPattern, PartialHexastore, TripleStore};

fn paper_workload(ids: &LubmIds) -> Vec<IdPattern> {
    vec![
        IdPattern::po(ids.p_type, ids.class_university),
        IdPattern::sp(ids.assoc_prof10, ids.p_teacher_of),
        IdPattern::s(ids.assoc_prof10),
        IdPattern::o(ids.course10),
        IdPattern::p(ids.p_teacher_of),
    ]
}

#[test]
fn recommended_partial_store_answers_the_workload_directly() {
    let triples = generate(&LubmConfig::tiny());
    let suite = Suite::build(&triples);
    let ids = LubmIds::resolve(&suite.dict).unwrap();
    let workload = paper_workload(&ids);

    let profile = WorkloadProfile::from_patterns(&workload);
    let keep = recommend(&profile);
    // §6's observation: this mix never forces the ops ordering.
    assert!(!keep.contains(IndexKind::Ops));
    assert!(keep.len() < 6);

    // Bulk-build the partial store so the memory comparison is
    // like-for-like: both stores exactly pre-sized by the bulk loader.
    let partial = PartialHexastore::from_triples(keep, suite.triples.iter().copied());
    assert_eq!(partial.len(), suite.hexastore.len());
    assert!(partial.heap_bytes() < suite.hexastore.heap_bytes());

    for pat in workload {
        assert!(partial.serves_directly(pat.shape()), "{pat:?} must stay a direct probe");
        let mut expected = suite.hexastore.matching(pat);
        expected.sort();
        let mut got = partial.matching(pat);
        got.sort();
        assert_eq!(got, expected, "{pat:?}");
    }
}

#[test]
fn savings_estimate_is_consistent_with_actual_partial_memory() {
    let triples = generate(&LubmConfig::tiny());
    let suite = Suite::build(&triples);
    let ids = LubmIds::resolve(&suite.dict).unwrap();
    let keep = recommend(&WorkloadProfile::from_patterns(&paper_workload(&ids)));

    let partial = PartialHexastore::from_triples(keep, suite.triples.iter().copied());
    let full = suite.hexastore.heap_bytes();
    let estimated_saving = estimate_savings(&suite.hexastore, keep);
    let actual_saving = full.saturating_sub(partial.heap_bytes());
    // The estimate attributes shared lists pairwise and splits
    // header/vector bytes evenly; the partial store additionally keeps an
    // *unshared* list copy per kept unpaired ordering, so realized savings
    // run below the estimate. The heuristic must still land within ~3×.
    let ratio = estimated_saving as f64 / actual_saving.max(1) as f64;
    assert!(
        (0.3..3.0).contains(&ratio),
        "estimate {estimated_saving} vs actual {actual_saving} (ratio {ratio})"
    );
}

#[test]
fn degraded_shapes_still_answer_correctly_on_generated_data() {
    // Keep only spo: every non-subject-bound shape takes the fallback
    // scan, and must still agree with the full store.
    let triples = generate(&LubmConfig::tiny());
    let suite = Suite::build(&triples);
    let ids = LubmIds::resolve(&suite.dict).unwrap();
    let mut spo_only = PartialHexastore::new(hexastore::IndexSet::EMPTY.with(IndexKind::Spo));
    for &t in &suite.triples {
        spo_only.insert(t);
    }
    for pat in [
        IdPattern::o(ids.course10),
        IdPattern::po(ids.p_type, ids.class_university),
        IdPattern::p(ids.p_teacher_of),
    ] {
        assert!(!spo_only.serves_directly(pat.shape()));
        let mut expected = suite.hexastore.matching(pat);
        expected.sort();
        let mut got = spo_only.matching(pat);
        got.sort();
        assert_eq!(got, expected, "{pat:?}");
    }
}
