//! Integration checks of the paper's space claims (§4.1, Figure 15) and
//! of prefix-scaling invariants the figure harness relies on.

use hex_bench_queries::Suite;
use hex_datagen::{barton::BartonConfig, lubm::LubmConfig};
use hexastore::TripleStore;

#[test]
fn space_blowup_is_bounded_on_real_workloads() {
    for (name, triples) in [
        (
            "barton",
            hex_datagen::barton::generate(&BartonConfig { records: 3_000, ..Default::default() }),
        ),
        ("lubm", hex_datagen::lubm::generate(&LubmConfig::tiny())),
    ] {
        let suite = Suite::build(&triples);
        let stats = suite.hexastore.space_stats();
        assert!(stats.blowup() <= 5.0, "{name}: blowup {}", stats.blowup());
        assert!(stats.blowup() >= 1.0, "{name}: blowup {}", stats.blowup());
        // Real data shares heavily, so it sits clearly under the bound.
        assert!(stats.blowup() < 4.8, "{name}: expected sharing, got {}", stats.blowup());
    }
}

#[test]
fn memory_ordering_matches_figure15() {
    // Figure 15: Hexastore uses the most memory (~4x COVP1 in the paper),
    // COVP2 about double COVP1.
    let triples =
        hex_datagen::barton::generate(&BartonConfig { records: 4_000, ..Default::default() });
    let suite = Suite::build(&triples);
    let hex = suite.hexastore.heap_bytes();
    let c1 = suite.covp1.heap_bytes();
    let c2 = suite.covp2.heap_bytes();
    assert!(hex > c2, "hexastore {hex} should exceed covp2 {c2}");
    assert!(c2 > c1, "covp2 {c2} should exceed covp1 {c1}");
    let ratio = hex as f64 / c1 as f64;
    assert!(
        (2.0..8.0).contains(&ratio),
        "hexastore/covp1 memory ratio {ratio} outside plausible Figure-15 range"
    );
}

#[test]
fn dataset_prefixes_are_stable() {
    // The figure harness assumes: generating a dataset twice yields the
    // same stream, and a prefix of the stream equals the prefix of the
    // regenerated stream.
    let a = hex_datagen::lubm::generate(&LubmConfig::tiny());
    let b = hex_datagen::lubm::generate(&LubmConfig::tiny());
    assert_eq!(a, b);
    let prefix = &a[..a.len() / 2];
    assert_eq!(prefix, &b[..a.len() / 2]);
}

#[test]
fn stores_agree_on_every_prefix() {
    let triples = hex_datagen::barton::generate(&BartonConfig {
        records: 600,
        seed: 21,
        ..Default::default()
    });
    for frac in [4, 2, 1] {
        let prefix = &triples[..triples.len() / frac];
        let suite = Suite::build(prefix);
        assert_eq!(suite.hexastore.len(), suite.table.len());
        assert_eq!(suite.hexastore.len(), suite.covp1.len());
        assert_eq!(suite.hexastore.len(), suite.covp2.len());
        // Spot-check a non-property-bound pattern on each prefix.
        if let Some(t) = suite.triples.first() {
            let pat = hexastore::IdPattern::o(t.o);
            let mut reference = suite.hexastore.matching(pat);
            reference.sort();
            for store in [&suite.table as &dyn TripleStore, &suite.covp1, &suite.covp2] {
                let mut got = store.matching(pat);
                got.sort();
                assert_eq!(got, reference, "{} at 1/{}", store.name(), frac);
            }
        }
    }
}

#[test]
fn incremental_and_bulk_agree_on_generated_data() {
    let triples = hex_datagen::lubm::generate(&LubmConfig::tiny());
    let mut dict = hex_dict::Dictionary::new();
    let encoded: Vec<hex_dict::IdTriple> = triples.iter().map(|t| dict.encode_triple(t)).collect();
    let bulk = hexastore::Hexastore::from_triples(encoded.iter().copied());
    let mut inc = hexastore::Hexastore::new();
    for &t in &encoded {
        inc.insert(t);
    }
    assert_eq!(bulk.len(), inc.len());
    assert_eq!(bulk.space_stats(), inc.space_stats());
    assert_eq!(bulk.matching(hexastore::IdPattern::ALL), inc.matching(hexastore::IdPattern::ALL));
}
